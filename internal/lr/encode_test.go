package lr

import (
	"bytes"
	"testing"

	"iglr/internal/grammar"
)

func roundTrip(t *testing.T, src string, opts Options) (*Table, *Table) {
	t.Helper()
	orig := build(t, src, opts)
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	loaded, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return orig, loaded
}

func TestEncodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name, src string
		opts      Options
	}{
		{"expr", exprSrc, Options{Method: LALR}},
		{"figure7", figure7Src, Options{Method: LALR}},
		{"lr1", exprSrc, Options{Method: LR1}},
		{"prefer-shift", `
%token i t e o
%start S
S : i S t S | i S t S e S | o ;`, Options{Method: LALR, PreferShift: true}},
		{"sequences", `
%token x ';'
%start B
B : Stmt* ;
Stmt : x ';' ;`, Options{Method: LALR}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig, loaded := roundTrip(t, tc.src, tc.opts)
			if loaded.NumStates() != orig.NumStates() || loaded.Method() != orig.Method() {
				t.Fatalf("shape mismatch: %v vs %v", loaded, orig)
			}
			g, lg := orig.Grammar(), loaded.Grammar()
			if g.NumSymbols() != lg.NumSymbols() || g.NumProductions() != lg.NumProductions() {
				t.Fatalf("grammar shape mismatch")
			}
			for i := 0; i < g.NumSymbols(); i++ {
				if g.Symbol(grammar.Sym(i)) != lg.Symbol(grammar.Sym(i)) {
					t.Fatalf("symbol %d differs: %+v vs %+v",
						i, g.Symbol(grammar.Sym(i)), lg.Symbol(grammar.Sym(i)))
				}
			}
			// Every cell identical.
			for st := 0; st < orig.NumStates(); st++ {
				for s := 0; s < g.NumSymbols(); s++ {
					sym := grammar.Sym(s)
					if g.IsTerminal(sym) {
						if !sameActions(orig.Actions(st, sym), loaded.Actions(st, sym)) {
							t.Fatalf("actions differ at (%d,%s)", st, g.Name(sym))
						}
					}
					if orig.Goto(st, sym) != loaded.Goto(st, sym) {
						t.Fatalf("goto differs at (%d,%s)", st, g.Name(sym))
					}
					if !g.IsTerminal(sym) {
						if !sameActions(orig.NontermActions(st, sym), loaded.NontermActions(st, sym)) {
							t.Fatalf("nonterm actions differ at (%d,%s)", st, g.Name(sym))
						}
					}
				}
			}
			if len(orig.Conflicts()) != len(loaded.Conflicts()) {
				t.Fatalf("conflicts %d vs %d", len(orig.Conflicts()), len(loaded.Conflicts()))
			}
			if len(orig.Resolutions()) != len(loaded.Resolutions()) {
				t.Fatalf("resolutions differ")
			}
			// The loaded table drives a parse identically.
			if tc.name == "expr" {
				gg := loaded.Grammar()
				if !run(t, loaded, toSyms(t, gg, "ID", "'+'", "ID", "'*'", "NUM")) {
					t.Fatal("loaded table rejects a valid sentence")
				}
				if run(t, loaded, toSyms(t, gg, "'+'")) {
					t.Fatal("loaded table accepts an invalid sentence")
				}
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("nope"),
		[]byte("IGTB"),
		[]byte("IGTB\x01garbage-that-is-not-a-grammar"),
	} {
		if _, err := Decode(data); err == nil {
			t.Fatalf("Decode(%q) should fail", data)
		}
	}
	// Truncations of a valid stream must error, not panic.
	orig := build(t, exprSrc, Options{Method: LALR})
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 3} {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("Decode of %d-byte truncation should fail", cut)
		}
	}
}

func TestGrammarBinaryRoundTrip(t *testing.T) {
	g, err := grammar.Parse(exprSrc)
	if err != nil {
		t.Fatal(err)
	}
	data := g.AppendBinary(nil)
	g2, rest, err := grammar.DecodeBinary(append(data, 0xAB, 0xCD))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
	if g2.String() != g.String() {
		t.Fatalf("grammar round trip mismatch:\n%s\nvs\n%s", g2.String(), g.String())
	}
	// Analyses recomputed.
	if !g2.First(g2.Start()).Equal(g.First(g.Start())) {
		t.Fatal("FIRST sets differ after round trip")
	}
}
