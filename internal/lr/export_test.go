package lr

// SetTestRawCapture installs (or, with nil, removes) the hook that receives
// the legacy sparse action encoding just before it is packed into the dense
// layout. Only the differential test uses it.
func SetTestRawCapture(f func([][]Action)) { testRawCapture = f }
