package lr

import "iglr/internal/grammar"

// Reduction fusion, precomputed at seal time for the batch parse kernel.
//
// In a deterministic region a single lookahead terminal frequently triggers
// a cascade of reductions before anything shifts: a unit reduce exposes a
// state whose only action on the same terminal is another reduce, and so on
// (ε-instantiations of X* sequences and unit chains like Primary → Expr are
// the common cases). Each step of that cascade normally costs an action
// lookup plus a goto lookup. The cascade, however, is a pure function of
// (state, terminal) for as long as every pop stays within the states the
// cascade itself has made known: an ε reduce pops nothing, and a k-ary
// reduce is statically resolvable while k reaches at most back to the
// entry state. seal walks each unique-reduce cell forward under exactly
// that rule and records the whole chain, so the kernel replays it as node
// builds only — one table hit for the entire cascade.
//
// The chains are derived data: Decode regenerates them by sealing, so the
// .cclang artifact format is unchanged and round-trips bit-identically.

// FuseStep is one fused reduction: the production to apply and the goto
// state entered after it. Arity and LHS come from the grammar production.
type FuseStep struct {
	Rule int32
	Goto int32
}

// maxFuseLen bounds a chain's length; cascades longer than this are
// vanishingly rare and the tail still runs through the normal loop.
const maxFuseLen = 8

// FusedChain returns the precomputed reduction cascade for (state, term),
// or nil when none applies (the cell is not a unique reduce, or the chain
// would not be statically resolvable for at least two steps). The kernel
// checks fusedState[state] first, so the map lookup is off the common path.
func (t *Table) FusedChain(state int, term grammar.Sym) []FuseStep {
	if !t.fusedState[state] {
		return nil
	}
	return t.fused[fuseKey(state, term)]
}

// HasFusedChains reports whether any cell of state begins a fused cascade —
// the cheap per-state gate the kernel reads before the map.
func (t *Table) HasFusedChains(state int) bool { return t.fusedState[state] }

func fuseKey(state int, term grammar.Sym) uint32 {
	return uint32(state)<<16 | uint32(uint16(term))
}

// precomputeFusedChains fills the fusion tables. Called from seal, after
// the dense cells exist (the simulation reads them through OneAction).
func (tb *tableBuilder) precomputeFusedChains() {
	t := tb.t
	g := tb.g
	t.fusedState = make([]bool, t.numStates)
	t.fused = map[uint32][]FuseStep{}
	// vstack simulates the known suffix of the parse stack: vstack[0] is the
	// entry state, everything above was pushed by the chain itself.
	var vstack []int32
	for state := 0; state < t.numStates; state++ {
		for _, term := range g.Terminals() {
			var chain []FuseStep
			vstack = append(vstack[:0], int32(state))
			for len(chain) < maxFuseLen {
				act, n := t.OneAction(int(vstack[len(vstack)-1]), term)
				if n != 1 || act.Kind != Reduce {
					break
				}
				prod := g.Production(int(act.Target))
				k := prod.Arity()
				if k > len(vstack)-1 {
					// The pop would reach below the entry state: the goto
					// context is unknown statically, so the chain ends here.
					break
				}
				vstack = vstack[:len(vstack)-k]
				gt := t.Goto(int(vstack[len(vstack)-1]), prod.LHS)
				if gt < 0 {
					break
				}
				chain = append(chain, FuseStep{Rule: act.Target, Goto: int32(gt)})
				vstack = append(vstack, int32(gt))
			}
			// A single-step "chain" is exactly what the normal loop already
			// does in one hit; only genuine cascades earn a table entry.
			if len(chain) >= 2 {
				t.fused[fuseKey(state, term)] = chain
				t.fusedState[state] = true
			}
		}
	}
}
