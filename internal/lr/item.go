// Package lr constructs LR parse tables — SLR(1), LALR(1) and canonical
// LR(1) — from grammars. Unlike a conventional generator it records
// conflicts instead of rejecting them (the paper's "modified bison that
// explicitly records all conflicts", §5), producing tables suitable for
// driving deterministic, incremental, GLR and incremental-GLR parsers.
// Yacc-style precedence/associativity declarations act as static syntactic
// filters (§4.1), removing conflicts at table-construction time.
package lr

import (
	"fmt"
	"sort"

	"iglr/internal/grammar"
)

// item is an LR(0) item: a production with a dot position.
type item struct {
	prod int
	dot  int
}

func (it item) String() string { return fmt.Sprintf("[p%d·%d]", it.prod, it.dot) }

// nextSym returns the symbol after the dot, or InvalidSym at the end.
func nextSym(g *grammar.Grammar, it item) grammar.Sym {
	p := g.Production(it.prod)
	if it.dot >= len(p.RHS) {
		return grammar.InvalidSym
	}
	return p.RHS[it.dot]
}

// itemSet is a sorted set of LR(0) items (a state kernel or closure).
type itemSet []item

func (s itemSet) Len() int      { return len(s) }
func (s itemSet) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s itemSet) Less(i, j int) bool {
	if s[i].prod != s[j].prod {
		return s[i].prod < s[j].prod
	}
	return s[i].dot < s[j].dot
}

// key returns a canonical map key for the (sorted) item set.
func (s itemSet) key() string {
	b := make([]byte, 0, len(s)*8)
	for _, it := range s {
		b = append(b,
			byte(it.prod), byte(it.prod>>8), byte(it.prod>>16), byte(it.prod>>24),
			byte(it.dot), byte(it.dot>>8), byte(it.dot>>16), byte(it.dot>>24))
	}
	return string(b)
}

// closure0 expands an LR(0) kernel to its closure: for every item with the
// dot before a nonterminal, all productions of that nonterminal are added
// with the dot at the start.
func closure0(g *grammar.Grammar, kernel itemSet) itemSet {
	seen := make(map[item]bool, len(kernel)*2)
	out := make(itemSet, 0, len(kernel)*2)
	var work []item
	for _, it := range kernel {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
			work = append(work, it)
		}
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		s := nextSym(g, it)
		if s == grammar.InvalidSym || g.IsTerminal(s) {
			continue
		}
		for _, p := range g.ProductionsFor(s) {
			ni := item{prod: p.ID, dot: 0}
			if !seen[ni] {
				seen[ni] = true
				out = append(out, ni)
				work = append(work, ni)
			}
		}
	}
	sort.Sort(out)
	return out
}

// gotoSet computes GOTO(items, x): kernel of the successor state.
func gotoSet(g *grammar.Grammar, closure itemSet, x grammar.Sym) itemSet {
	var out itemSet
	for _, it := range closure {
		if nextSym(g, it) == x {
			out = append(out, item{prod: it.prod, dot: it.dot + 1})
		}
	}
	sort.Sort(out)
	return out
}
