package lr

import (
	"iglr/internal/grammar"
)

// buildFromLR0 constructs SLR(1) or LALR(1) tables over the LR(0) automaton.
func buildFromLR0(g *grammar.Grammar, opts Options) (*Table, error) {
	a := buildLR0(g)
	tb := newTableBuilder(g, len(a.states), opts.Method, opts)

	for _, st := range a.states {
		for sym, to := range st.trans {
			tb.setGoto(st.id, sym, to)
			if g.IsTerminal(sym) {
				tb.addAction(st.id, sym, Action{Kind: Shift, Target: int32(to)})
			}
		}
	}

	switch opts.Method {
	case SLR:
		for _, st := range a.states {
			for _, it := range st.closure {
				if nextSym(g, it) != grammar.InvalidSym {
					continue
				}
				if it.prod == 0 {
					tb.addAction(st.id, grammar.EOF, Action{Kind: Accept})
					continue
				}
				lhs := g.Production(it.prod).LHS
				g.Follow(lhs).ForEach(func(t grammar.Sym) {
					tb.addAction(st.id, t, Action{Kind: Reduce, Target: int32(it.prod)})
				})
			}
		}
	case LALR:
		finals := lalrFinalItems(g, a)
		for stateID, items := range finals {
			for _, li := range items {
				if li.prod == 0 {
					if li.la == grammar.EOF {
						tb.addAction(stateID, grammar.EOF, Action{Kind: Accept})
					}
					continue
				}
				tb.addAction(stateID, li.la, Action{Kind: Reduce, Target: int32(li.prod)})
			}
		}
	}
	return tb.finish(), nil
}

// lalrFinalItems computes, for every LR(0) state, the completed LR(1) items
// (dot at end, with LALR lookaheads) using the spontaneous-generation /
// propagation algorithm (Dragon Book §4.7.4, as in bison).
func lalrFinalItems(g *grammar.Grammar, a *automaton) [][]lr1Item {
	n := g.NumSymbols()

	// Index kernel items per state.
	kidx := make([]map[item]int, len(a.states))
	las := make([][]grammar.TermSet, len(a.states))
	for _, st := range a.states {
		kidx[st.id] = make(map[item]int, len(st.kernel))
		las[st.id] = make([]grammar.TermSet, len(st.kernel))
		for i, it := range st.kernel {
			kidx[st.id][it] = i
			las[st.id][i] = grammar.NewTermSet(n)
		}
	}

	type edge struct{ toState, toIdx int }
	// prop[state][kernelIdx] = propagation targets.
	prop := make([][][]edge, len(a.states))
	for i, st := range a.states {
		prop[i] = make([][]edge, len(st.kernel))
	}

	// Discover spontaneous lookaheads and propagation edges.
	for _, st := range a.states {
		for ki, kit := range st.kernel {
			cl := closure1(g, []lr1Item{{item: kit, la: dummyLA}})
			for _, li := range cl {
				x := nextSym(g, li.item)
				if x == grammar.InvalidSym {
					continue
				}
				to, ok := st.trans[x]
				if !ok {
					continue
				}
				target := item{prod: li.prod, dot: li.dot + 1}
				ti, ok := kidx[to][target]
				if !ok {
					continue
				}
				if li.la == dummyLA {
					prop[st.id][ki] = append(prop[st.id][ki], edge{toState: to, toIdx: ti})
				} else {
					las[to][ti].Add(li.la)
				}
			}
		}
	}

	// Initialize: [S' → ·start] in state 0 has lookahead EOF.
	if i, ok := kidx[0][item{prod: 0, dot: 0}]; ok {
		las[0][i].Add(grammar.EOF)
	}

	// Propagate to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, st := range a.states {
			for ki := range st.kernel {
				src := las[st.id][ki]
				for _, e := range prop[st.id][ki] {
					if las[e.toState][e.toIdx].UnionWith(src) {
						changed = true
					}
				}
			}
		}
	}

	// For each state, close the kernel with its final lookaheads and
	// collect completed items (handles ε-production reductions, which live
	// only in the closure).
	out := make([][]lr1Item, len(a.states))
	for _, st := range a.states {
		var seed []lr1Item
		for ki, kit := range st.kernel {
			las[st.id][ki].ForEach(func(t grammar.Sym) {
				seed = append(seed, lr1Item{item: kit, la: t})
			})
		}
		cl := closure1(g, seed)
		var finals []lr1Item
		for _, li := range cl {
			if nextSym(g, li.item) == grammar.InvalidSym {
				finals = append(finals, li)
			}
		}
		out[st.id] = finals
	}
	return out
}
