package lr

import (
	"sort"

	"iglr/internal/grammar"
)

// lr1Set is a sorted set of LR(1) items used as a canonical state identity.
type lr1Set []lr1Item

func (s lr1Set) sortInPlace() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].prod != s[j].prod {
			return s[i].prod < s[j].prod
		}
		if s[i].dot != s[j].dot {
			return s[i].dot < s[j].dot
		}
		return s[i].la < s[j].la
	})
}

func (s lr1Set) key() string {
	b := make([]byte, 0, len(s)*10)
	for _, it := range s {
		b = append(b,
			byte(it.prod), byte(it.prod>>8), byte(it.prod>>16),
			byte(it.dot), byte(it.dot>>8),
			byte(it.la), byte(it.la>>8), byte(it.la>>16))
	}
	return string(b)
}

// buildLR1Table constructs canonical LR(1) tables. Canonical tables are
// larger than LALR but have no merged cores; the paper cites Lankhorst's
// finding that LALR tables are both smaller and faster for GLR parsing,
// which our ablation bench reproduces.
func buildLR1Table(g *grammar.Grammar, opts Options) (*Table, error) {
	type lr1State struct {
		id      int
		kernel  lr1Set
		closure []lr1Item
		trans   map[grammar.Sym]int
	}
	var states []*lr1State
	index := make(map[string]int)

	addState := func(kernel lr1Set) int {
		kernel.sortInPlace()
		key := kernel.key()
		if id, ok := index[key]; ok {
			return id
		}
		st := &lr1State{
			id:      len(states),
			kernel:  kernel,
			closure: closure1(g, kernel),
			trans:   make(map[grammar.Sym]int),
		}
		states = append(states, st)
		index[key] = st.id
		return st.id
	}

	addState(lr1Set{{item: item{prod: 0, dot: 0}, la: grammar.EOF}})
	for i := 0; i < len(states); i++ {
		st := states[i]
		bySym := make(map[grammar.Sym]lr1Set)
		var syms []grammar.Sym
		for _, li := range st.closure {
			x := nextSym(g, li.item)
			if x == grammar.InvalidSym {
				continue
			}
			if _, ok := bySym[x]; !ok {
				syms = append(syms, x)
			}
			bySym[x] = append(bySym[x], lr1Item{item: item{prod: li.prod, dot: li.dot + 1}, la: li.la})
		}
		sort.Slice(syms, func(x, y int) bool { return syms[x] < syms[y] })
		for _, x := range syms {
			st.trans[x] = addState(bySym[x])
		}
	}

	tb := newTableBuilder(g, len(states), LR1, opts)
	for _, st := range states {
		for sym, to := range st.trans {
			tb.setGoto(st.id, sym, to)
			if g.IsTerminal(sym) {
				tb.addAction(st.id, sym, Action{Kind: Shift, Target: int32(to)})
			}
		}
		for _, li := range st.closure {
			if nextSym(g, li.item) != grammar.InvalidSym {
				continue
			}
			if li.prod == 0 {
				if li.la == grammar.EOF {
					tb.addAction(st.id, grammar.EOF, Action{Kind: Accept})
				}
				continue
			}
			tb.addAction(st.id, li.la, Action{Kind: Reduce, Target: int32(li.prod)})
		}
	}
	return tb.finish(), nil
}
