package lr

import (
	"testing"

	"iglr/internal/grammar"
)

const exprSrc = `
%token ID NUM
%left '+' '-'
%left '*' '/'
%right UMINUS
%start Expr
Expr : Expr '+' Expr
     | Expr '-' Expr
     | Expr '*' Expr
     | Expr '/' Expr
     | '-' Expr %prec UMINUS
     | '(' Expr ')'
     | ID
     | NUM
     ;
`

// figure7Src is the LR(2) grammar of the paper's Figure 7: unambiguous but
// not LR(1) — parsing "x z c" needs two tokens of lookahead to decide
// whether x reduces to U or V.
const figure7Src = `
%token x z c e
%start A
A : B c | D e ;
B : U z ;
D : V z ;
U : x ;
V : x ;
`

func toSyms(t *testing.T, g *grammar.Grammar, names ...string) []grammar.Sym {
	t.Helper()
	out := make([]grammar.Sym, len(names))
	for i, n := range names {
		s := g.Lookup(n)
		if s == grammar.InvalidSym {
			t.Fatalf("symbol %q not in grammar", n)
		}
		out[i] = s
	}
	return out
}

// run simulates a deterministic LR parse, returning whether input (without
// EOF) is accepted. Fails the test if a multiply-defined cell is hit.
func run(t *testing.T, tbl *Table, input []grammar.Sym) bool {
	t.Helper()
	g := tbl.Grammar()
	stack := []int{tbl.StartState()}
	input = append(append([]grammar.Sym{}, input...), grammar.EOF)
	i := 0
	for steps := 0; steps < 100000; steps++ {
		top := stack[len(stack)-1]
		acts := tbl.Actions(top, input[i])
		if len(acts) == 0 {
			return false
		}
		if len(acts) > 1 {
			t.Fatalf("non-deterministic cell hit in deterministic run: state %d on %s", top, g.Name(input[i]))
		}
		switch a := acts[0]; a.Kind {
		case Shift:
			stack = append(stack, int(a.Target))
			i++
		case Reduce:
			p := g.Production(int(a.Target))
			stack = stack[:len(stack)-p.Arity()]
			nt := tbl.Goto(stack[len(stack)-1], p.LHS)
			if nt < 0 {
				t.Fatalf("missing goto for %s in state %d", g.Name(p.LHS), stack[len(stack)-1])
			}
			stack = append(stack, nt)
		case Accept:
			return true
		}
	}
	t.Fatalf("parser did not terminate")
	return false
}

func build(t *testing.T, src string, opts Options) *Table {
	t.Helper()
	g, err := grammar.Parse(src)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	tbl, err := Build(g, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tbl
}

func TestExprPrecedenceResolvesAllConflicts(t *testing.T) {
	for _, m := range []Method{SLR, LALR, LR1} {
		t.Run(m.String(), func(t *testing.T) {
			tbl := build(t, exprSrc, Options{Method: m})
			if !tbl.Deterministic() {
				t.Fatalf("expected deterministic table, got conflicts:\n%s", tbl.DescribeConflicts())
			}
			if len(tbl.Resolutions()) == 0 {
				t.Fatalf("expected static resolutions from precedence declarations")
			}
			g := tbl.Grammar()
			if !run(t, tbl, toSyms(t, g, "ID", "'+'", "ID", "'*'", "NUM")) {
				t.Fatalf("should accept ID + ID * NUM")
			}
			if !run(t, tbl, toSyms(t, g, "'-'", "'('", "ID", "')'")) {
				t.Fatalf("should accept - ( ID )")
			}
			if run(t, tbl, toSyms(t, g, "ID", "'+'")) {
				t.Fatalf("should reject ID +")
			}
			if run(t, tbl, toSyms(t, g, "'+'", "ID")) {
				t.Fatalf("should reject + ID")
			}
		})
	}
}

func TestAmbiguousWithoutPrecedence(t *testing.T) {
	src := `
%token ID '+'
%start E
E : E '+' E | ID ;
`
	tbl := build(t, src, Options{Method: LALR})
	if tbl.Deterministic() {
		t.Fatalf("ambiguous grammar should produce conflicts")
	}
	found := false
	g := tbl.Grammar()
	for _, c := range tbl.Conflicts() {
		if c.Term == g.Lookup("'+'") {
			found = true
			hasShift, hasReduce := false, false
			for _, a := range c.Actions {
				switch a.Kind {
				case Shift:
					hasShift = true
				case Reduce:
					hasReduce = true
				}
			}
			if !hasShift || !hasReduce {
				t.Fatalf("expected shift/reduce conflict, got %v", c.Actions)
			}
		}
	}
	if !found {
		t.Fatalf("expected a conflict on '+'")
	}
}

func TestFigure7IsNonDeterministicLR1(t *testing.T) {
	// The LR(2) grammar conflicts under every 1-token method, including
	// canonical LR(1): the table cannot decide U→x vs V→x on lookahead z.
	for _, m := range []Method{SLR, LALR, LR1} {
		tbl := build(t, figure7Src, Options{Method: m})
		if tbl.Deterministic() {
			t.Fatalf("%v: figure 7 grammar should have conflicts", m)
		}
		g := tbl.Grammar()
		z := g.Lookup("z")
		foundRR := false
		for _, c := range tbl.Conflicts() {
			if c.Term != z {
				continue
			}
			reduces := 0
			for _, a := range c.Actions {
				if a.Kind == Reduce {
					reduces++
				}
			}
			if reduces >= 2 {
				foundRR = true
			}
		}
		if !foundRR {
			t.Fatalf("%v: expected reduce/reduce conflict on z:\n%s", m, tbl.DescribeConflicts())
		}
	}
}

func TestLALRNotSLR(t *testing.T) {
	// The classic pointer-assignment grammar: LALR(1) but not SLR(1).
	src := `
%token id '*' '='
%start S
S : L '=' R | R ;
L : '*' R | id ;
R : L ;
`
	slr := build(t, src, Options{Method: SLR})
	if slr.Deterministic() {
		t.Fatalf("SLR should conflict on '='")
	}
	lalr := build(t, src, Options{Method: LALR})
	if !lalr.Deterministic() {
		t.Fatalf("LALR should be conflict-free:\n%s", lalr.DescribeConflicts())
	}
	lr1 := build(t, src, Options{Method: LR1})
	if !lr1.Deterministic() {
		t.Fatalf("LR1 should be conflict-free")
	}
	g := lalr.Grammar()
	if !run(t, lalr, toSyms(t, g, "'*'", "id", "'='", "id")) {
		t.Fatalf("LALR should accept * id = id")
	}
}

func TestLR1NotLALR(t *testing.T) {
	// Canonical example: LR(1) but not LALR(1) — core merging induces a
	// reduce/reduce conflict.
	src := `
%token a b c d e
%start S
S : a E c | a F d | b F c | b E d ;
E : e ;
F : e ;
`
	lalr := build(t, src, Options{Method: LALR})
	if lalr.Deterministic() {
		t.Fatalf("LALR should conflict for this grammar")
	}
	lr1 := build(t, src, Options{Method: LR1})
	if !lr1.Deterministic() {
		t.Fatalf("LR1 should be conflict-free:\n%s", lr1.DescribeConflicts())
	}
	if lr1.NumStates() <= lalr.NumStates() {
		t.Fatalf("LR1 states (%d) should exceed LALR states (%d)", lr1.NumStates(), lalr.NumStates())
	}
	g := lr1.Grammar()
	for _, input := range [][]string{{"a", "e", "c"}, {"a", "e", "d"}, {"b", "e", "c"}, {"b", "e", "d"}} {
		if !run(t, lr1, toSyms(t, g, input...)) {
			t.Fatalf("LR1 should accept %v", input)
		}
	}
	if run(t, lr1, toSyms(t, g, "a", "e")) {
		t.Fatalf("LR1 should reject a e")
	}
}

func TestEpsilonProductions(t *testing.T) {
	src := `
%token a b
%start S
S : A B ;
A : a | ;
B : b | ;
`
	for _, m := range []Method{SLR, LALR, LR1} {
		tbl := build(t, src, Options{Method: m})
		if !tbl.Deterministic() {
			t.Fatalf("%v: should be deterministic:\n%s", m, tbl.DescribeConflicts())
		}
		g := tbl.Grammar()
		for _, input := range [][]string{{"a", "b"}, {"a"}, {"b"}, {}} {
			if !run(t, tbl, toSyms(t, g, input...)) {
				t.Fatalf("%v: should accept %v", m, input)
			}
		}
		if run(t, tbl, toSyms(t, g, "b", "a")) {
			t.Fatalf("%v: should reject b a", m)
		}
	}
}

func TestNonassoc(t *testing.T) {
	src := `
%token ID '<'
%nonassoc '<'
%start E
E : E '<' E | ID ;
`
	tbl := build(t, src, Options{Method: LALR})
	if !tbl.Deterministic() {
		t.Fatalf("nonassoc should remove the conflict")
	}
	g := tbl.Grammar()
	if !run(t, tbl, toSyms(t, g, "ID", "'<'", "ID")) {
		t.Fatalf("should accept ID < ID")
	}
	if run(t, tbl, toSyms(t, g, "ID", "'<'", "ID", "'<'", "ID")) {
		t.Fatalf("nonassoc chain ID < ID < ID should be a syntax error")
	}
	foundNonassoc := false
	for _, r := range tbl.Resolutions() {
		if r.Rule == "nonassoc" {
			foundNonassoc = true
		}
	}
	if !foundNonassoc {
		t.Fatalf("expected a nonassoc resolution record")
	}
}

func TestPreferShift(t *testing.T) {
	// Dangling else, resolved by prefer-shift.
	src := `
%token if then else other
%start S
S : if S then S | if S then S else S | other ;
`
	plain := build(t, src, Options{Method: LALR})
	if plain.Deterministic() {
		t.Fatalf("dangling else should conflict without filters")
	}
	ps := build(t, src, Options{Method: LALR, PreferShift: true})
	if !ps.Deterministic() {
		t.Fatalf("prefer-shift should resolve dangling else:\n%s", ps.DescribeConflicts())
	}
	g := ps.Grammar()
	if !run(t, ps, toSyms(t, g, "if", "other", "then", "if", "other", "then", "other", "else", "other")) {
		t.Fatalf("should accept nested dangling else")
	}
}

func TestPreferEarlierRule(t *testing.T) {
	src := `
%token x z c e
%start A
A : B c | D e ;
B : U z ;
D : V z ;
U : x ;
V : x ;
`
	tbl := build(t, src, Options{Method: LALR, PreferEarlierRule: true})
	// The r/r conflict on z resolves to the earlier rule (U : x).
	for _, c := range tbl.Conflicts() {
		reduces := 0
		for _, a := range c.Actions {
			if a.Kind == Reduce {
				reduces++
			}
		}
		if reduces > 1 {
			t.Fatalf("reduce/reduce should have been resolved: %v", c)
		}
	}
	found := false
	for _, r := range tbl.Resolutions() {
		if r.Rule == "prefer-reduce" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected prefer-reduce resolution record")
	}
}

func TestTableSizesLALRSmallerThanLR1(t *testing.T) {
	// Reproduces the shape of the Lankhorst comparison the paper cites:
	// LALR tables are significantly smaller than canonical LR(1).
	lalr := build(t, exprSrc, Options{Method: LALR})
	lr1 := build(t, exprSrc, Options{Method: LR1})
	if lr1.NumStates() < lalr.NumStates() {
		t.Fatalf("LR1 should have at least as many states: %d vs %d", lr1.NumStates(), lalr.NumStates())
	}
	aL, gL := lalr.TableSize()
	a1, g1 := lr1.TableSize()
	if a1+g1 < aL+gL {
		t.Fatalf("LR1 table (%d) should not be smaller than LALR (%d)", a1+g1, aL+gL)
	}
}

func TestNontermActions(t *testing.T) {
	tbl := build(t, exprSrc, Options{Method: LALR})
	g := tbl.Grammar()
	expr := g.Lookup("Expr")
	// In the start state, the parser must be able to *shift* terminals in
	// FIRST(Expr); NontermActions is only defined when all of them agree,
	// which they do not in general for Expr (different shift targets). Just
	// exercise the API across all states and check consistency with the
	// definition.
	for st := 0; st < tbl.NumStates(); st++ {
		acts := tbl.NontermActions(st, expr)
		if acts == nil {
			continue
		}
		g.First(expr).ForEach(func(term grammar.Sym) {
			cell := tbl.Actions(st, term)
			if !sameActions(cell, acts) {
				t.Fatalf("state %d: NontermActions disagrees with cell for %s", st, g.Name(term))
			}
		})
	}
}

func TestNullableNontermExcludedFromNontermActions(t *testing.T) {
	src := `
%token a b
%start S
S : A b ;
A : a | ;
`
	tbl := build(t, src, Options{Method: LALR})
	g := tbl.Grammar()
	A := g.Lookup("A")
	for st := 0; st < tbl.NumStates(); st++ {
		if tbl.NontermActions(st, A) != nil {
			t.Fatalf("nullable nonterminal A must have no precomputed actions (state %d)", st)
		}
	}
}

func TestHasConflictFlag(t *testing.T) {
	tbl := build(t, figure7Src, Options{Method: LALR})
	any := false
	for st := 0; st < tbl.NumStates(); st++ {
		if tbl.HasConflict(st) {
			any = true
		}
	}
	if !any {
		t.Fatalf("expected at least one conflicted state")
	}
	for _, c := range tbl.Conflicts() {
		if !tbl.HasConflict(c.State) {
			t.Fatalf("conflict state %d not flagged", c.State)
		}
	}
}

func TestSequenceGrammarTables(t *testing.T) {
	src := `
%token x ';'
%start Block
Block : Stmt* ;
Stmt : x ';' ;
`
	tbl := build(t, src, Options{Method: LALR})
	if !tbl.Deterministic() {
		t.Fatalf("sequence grammar should be deterministic:\n%s", tbl.DescribeConflicts())
	}
	g := tbl.Grammar()
	for _, n := range []int{0, 1, 2, 5} {
		var input []grammar.Sym
		for i := 0; i < n; i++ {
			input = append(input, g.Lookup("x"), g.Lookup("';'"))
		}
		if !run(t, tbl, input) {
			t.Fatalf("should accept %d statements", n)
		}
	}
}
