package lr

import (
	"fmt"
	"strings"

	"iglr/internal/grammar"
)

// Method selects the table-construction algorithm.
type Method uint8

// Table construction methods.
const (
	// LALR builds LALR(1) tables — the paper's default: smaller than LR(1),
	// faster in non-deterministic regions, and better incremental reuse due
	// to merged cores (§3.3).
	LALR Method = iota
	// SLR builds SLR(1) tables (reduce on FOLLOW).
	SLR
	// LR1 builds canonical LR(1) tables.
	LR1
)

func (m Method) String() string {
	switch m {
	case LALR:
		return "LALR(1)"
	case SLR:
		return "SLR(1)"
	case LR1:
		return "LR(1)"
	default:
		return fmt.Sprintf("Method(%d)", m)
	}
}

// Kind discriminates parse actions.
type Kind uint8

// Parse action kinds.
const (
	Shift Kind = iota
	Reduce
	Accept
)

// Action is one parse action. For Shift, Target is the successor state; for
// Reduce, the production number.
type Action struct {
	Kind   Kind
	Target int32
}

func (a Action) String() string {
	switch a.Kind {
	case Shift:
		return fmt.Sprintf("s%d", a.Target)
	case Reduce:
		return fmt.Sprintf("r%d", a.Target)
	case Accept:
		return "acc"
	default:
		return "?"
	}
}

// Conflict is a multiply-defined table cell that survived static filtering.
// GLR parsers fork on these; deterministic parsers must reject the grammar.
type Conflict struct {
	State   int
	Term    grammar.Sym
	Actions []Action
}

// Resolution records a conflict removed by a static syntactic filter
// (precedence/associativity or prefer-shift), for diagnostics.
type Resolution struct {
	State   int
	Term    grammar.Sym
	Kept    Action
	Dropped []Action
	Rule    string // "precedence", "associativity", "nonassoc", "prefer-shift", "prefer-reduce"
}

// Options configure table construction.
type Options struct {
	Method Method
	// NoPrecedence disables yacc-style precedence/associativity resolution.
	NoPrecedence bool
	// PreferShift resolves any remaining shift/reduce conflicts in favor of
	// shifting (a static filter, §4.1).
	PreferShift bool
	// PreferEarlierRule resolves remaining reduce/reduce conflicts in favor
	// of the production declared first (yacc behavior).
	PreferEarlierRule bool
}

// Dense cell encoding. Each (state, symbol) action cell is a single 64-bit
// word:
//
//	bits  0..7   count — number of actions in the cell (0 = empty)
//	bits  8..39  offset — index of the cell's first action in the
//	             row-major spill array actSpill
//	bits 40..41  kind   — inline copy of the action (valid iff count == 1)
//	bits 42..63  target
//
// The spill array holds every cell's actions contiguously in row order, so
// Actions is a subslice (no per-lookup allocation), while the deterministic
// fast path (count == 1, the overwhelmingly common case) decodes the action
// from the cell word alone without touching a second cache line.
const (
	cellCountBits = 8
	cellOffBits   = 32
	cellOffShift  = cellCountBits
	cellKindShift = cellCountBits + cellOffBits
	cellTargShift = cellKindShift + 2

	cellCountMask = 1<<cellCountBits - 1
	cellOffMask   = 1<<cellOffBits - 1
)

func packCell(off, count int, inline Action) uint64 {
	cell := uint64(count)&cellCountMask | uint64(off)<<cellOffShift
	if count == 1 {
		cell |= uint64(inline.Kind)<<cellKindShift | uint64(inline.Target)<<cellTargShift
	}
	return cell
}

func cellInline(cell uint64) Action {
	return Action{Kind: Kind(cell >> cellKindShift & 0x3), Target: int32(cell >> cellTargShift)}
}

// Table is an LR parse table with possibly multiply-defined entries, stored
// in the dense packed encoding described above.
type Table struct {
	g         *grammar.Grammar
	method    Method
	numStates int
	nSyms     int

	// actCells[state*nSyms+term] is the packed action cell.
	actCells []uint64
	// actSpill holds all actions, contiguous in (state, term) row order.
	actSpill []Action
	// gotos[state*nSyms+sym]: successor state or -1. Defined for both
	// nonterminals (GOTO) and terminals (shift target, duplicated for
	// convenience of subtree shifting).
	gotos []int32

	conflicts   []Conflict
	resolutions []Resolution

	// ntCells caches the paper's precomputed nonterminal reductions (§3.2)
	// in the same packed encoding: ntCells[state*nSyms+nonterm] is the cell
	// of a terminal in FIRST(nonterm) when every such terminal agrees on
	// the same actions, or 0 when the structure must be traversed instead.
	ntCells []uint64
	// conflictState[state] reports whether any cell of the state is
	// multiply defined (used to track the non-deterministic state
	// equivalence class during incremental parsing).
	conflictState []bool

	// fused holds the precomputed reduction cascades (see fuse.go), keyed
	// by fuseKey(state, term); fusedState[state] gates the lookup.
	fused      map[uint32][]FuseStep
	fusedState []bool
}

// Build constructs a parse table for g.
func Build(g *grammar.Grammar, opts Options) (*Table, error) {
	switch opts.Method {
	case LALR, SLR:
		return buildFromLR0(g, opts)
	case LR1:
		return buildLR1Table(g, opts)
	default:
		return nil, fmt.Errorf("lr: unknown method %v", opts.Method)
	}
}

// MustBuild is Build but panics on error.
func MustBuild(g *grammar.Grammar, opts Options) *Table {
	t, err := Build(g, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Grammar returns the grammar the table was built from.
func (t *Table) Grammar() *grammar.Grammar { return t.g }

// Method returns the construction method.
func (t *Table) Method() Method { return t.method }

// NumStates returns the number of automaton states.
func (t *Table) NumStates() int { return t.numStates }

// StartState is the initial parse state.
func (t *Table) StartState() int { return 0 }

// Actions returns the parse actions for (state, terminal). Multiple actions
// indicate a conflict (GLR fork point). The returned slice aliases the
// table's spill storage and must not be modified.
func (t *Table) Actions(state int, term grammar.Sym) []Action {
	cell := t.actCells[state*t.nSyms+int(term)]
	n := cell & cellCountMask
	if n == 0 {
		return nil
	}
	off := cell >> cellOffShift & cellOffMask
	return t.actSpill[off : off+n]
}

// OneAction is the deterministic fast path: it decodes the (state, term)
// cell in a single word, returning its action count and — when the count is
// exactly 1 — the action itself. Callers fall back to Actions for
// multiply-defined cells.
func (t *Table) OneAction(state int, term grammar.Sym) (Action, int) {
	cell := t.actCells[state*t.nSyms+int(term)]
	return cellInline(cell), int(cell & cellCountMask)
}

// Goto returns the successor state on symbol s (terminal or nonterminal),
// or -1 when undefined.
func (t *Table) Goto(state int, s grammar.Sym) int {
	return int(t.gotos[state*t.nSyms+int(s)])
}

// ExpectedTerminals returns the terminals with at least one defined action
// in state, in symbol order — the "expected one of" set a parser stopped in
// that state can report. The reserved error terminal is excluded (no
// production may use it, so it is never acceptable).
func (t *Table) ExpectedTerminals(state int) []grammar.Sym {
	var out []grammar.Sym
	row := state * t.nSyms
	for _, term := range t.g.Terminals() {
		if term == grammar.ErrorSym {
			continue
		}
		if t.actCells[row+int(term)]&cellCountMask != 0 {
			out = append(out, term)
		}
	}
	return out
}

// Conflicts returns the unresolved conflicts in the table.
func (t *Table) Conflicts() []Conflict { return t.conflicts }

// Resolutions returns the statically filtered (resolved) conflicts.
func (t *Table) Resolutions() []Resolution { return t.resolutions }

// Deterministic reports whether every cell holds at most one action.
func (t *Table) Deterministic() bool { return len(t.conflicts) == 0 }

// HasConflict reports whether any cell of state is multiply defined.
func (t *Table) HasConflict(state int) bool { return t.conflictState[state] }

// NontermActions implements the paper's precomputed nonterminal reductions
// (§3.2): when the incremental parser's lookahead is a subtree with root nt,
// the parser may act without locating the next terminal iff every terminal
// in FIRST(nt) yields the same action in this state and nt does not derive
// ε. Returns nil when the structure must be traversed instead.
func (t *Table) NontermActions(state int, nt grammar.Sym) []Action {
	cell := t.ntCells[state*t.nSyms+int(nt)]
	n := cell & cellCountMask
	if n == 0 {
		return nil
	}
	off := cell >> cellOffShift & cellOffMask
	return t.actSpill[off : off+n]
}

// OneNontermAction is the single-word fast path over NontermActions,
// mirroring OneAction.
func (t *Table) OneNontermAction(state int, nt grammar.Sym) (Action, int) {
	cell := t.ntCells[state*t.nSyms+int(nt)]
	return cellInline(cell), int(cell & cellCountMask)
}

// TableSize returns the number of occupied action and goto cells of the
// dense encoding: actionCells is the spill length (every stored action,
// conflicts included — exactly what ships in memory), gotoCells the number
// of defined goto entries.
func (t *Table) TableSize() (actionCells, gotoCells int) {
	actionCells = len(t.actSpill)
	for _, gt := range t.gotos {
		if gt >= 0 {
			gotoCells++
		}
	}
	return
}

// Footprint returns the dense encoding's resident size in bytes: packed
// action cells, spill storage, goto array, and the nonterminal-reduction
// cache. This is the number the §3.3 table-size ablation should compare,
// since it is what a loaded language actually costs.
func (t *Table) Footprint() int {
	const actionBytes = 8 // struct{uint8; int32} rounds to 8
	return len(t.actCells)*8 + len(t.actSpill)*actionBytes +
		len(t.gotos)*4 + len(t.ntCells)*8 + len(t.conflictState)
}

// String renders a compact summary.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v table: %d states, %d conflicts (%d statically resolved)\n",
		t.method, t.numStates, len(t.conflicts), len(t.resolutions))
	return b.String()
}

// DescribeConflicts renders each conflict with symbol names.
func (t *Table) DescribeConflicts() string {
	var b strings.Builder
	for _, c := range t.conflicts {
		fmt.Fprintf(&b, "state %d on %s:", c.State, t.g.Name(c.Term))
		for _, a := range c.Actions {
			fmt.Fprintf(&b, " %v", a)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// testRawCapture, when non-nil, receives the sparse pre-pack encoding at
// seal time. The differential test uses it to prove the dense encoding is
// cell-for-cell identical to the legacy layout.
var testRawCapture func(raw [][]Action)

// tableBuilder accumulates actions during construction in the legacy
// sparse encoding (a slice per cell); seal packs it into the dense form.
type tableBuilder struct {
	g     *grammar.Grammar
	nSyms int
	t     *Table
	opts  Options

	// actions[state*nSyms+term]: nil, or 1+ actions (pre-pack).
	actions [][]Action
}

func newTableBuilder(g *grammar.Grammar, numStates int, method Method, opts Options) *tableBuilder {
	n := g.NumSymbols()
	t := &Table{
		g:             g,
		method:        method,
		numStates:     numStates,
		nSyms:         n,
		gotos:         make([]int32, numStates*n),
		conflictState: make([]bool, numStates),
	}
	for i := range t.gotos {
		t.gotos[i] = -1
	}
	return &tableBuilder{
		g: g, nSyms: n, t: t, opts: opts,
		actions: make([][]Action, numStates*n),
	}
}

func (tb *tableBuilder) setGoto(state int, s grammar.Sym, to int) {
	tb.t.gotos[state*tb.nSyms+int(s)] = int32(to)
}

func (tb *tableBuilder) addAction(state int, term grammar.Sym, a Action) {
	idx := state*tb.nSyms + int(term)
	for _, old := range tb.actions[idx] {
		if old == a {
			return
		}
	}
	tb.actions[idx] = append(tb.actions[idx], a)
}

// finish applies static filters, then packs and finalizes the table.
func (tb *tableBuilder) finish() *Table {
	g := tb.g
	for state := 0; state < tb.t.numStates; state++ {
		for term := 0; term < tb.nSyms; term++ {
			if !g.IsTerminal(grammar.Sym(term)) {
				continue
			}
			idx := state*tb.nSyms + term
			if acts := tb.actions[idx]; len(acts) > 1 {
				tb.actions[idx] = tb.resolve(state, grammar.Sym(term), acts)
			}
		}
	}
	return tb.seal()
}

// seal packs the sparse action encoding into the dense cell/spill layout,
// collects the surviving conflicts, and precomputes the nonterminal
// reductions. Decode calls it directly (its filters were applied before
// serialization).
func (tb *tableBuilder) seal() *Table {
	if testRawCapture != nil {
		testRawCapture(tb.actions)
	}
	t := tb.t
	total := 0
	for _, acts := range tb.actions {
		total += len(acts)
	}
	t.actCells = make([]uint64, t.numStates*tb.nSyms)
	t.actSpill = make([]Action, 0, total)
	for state := 0; state < t.numStates; state++ {
		row := state * tb.nSyms
		for sym := 0; sym < tb.nSyms; sym++ {
			acts := tb.actions[row+sym]
			if len(acts) == 0 {
				continue
			}
			off := len(t.actSpill)
			t.actSpill = append(t.actSpill, acts...)
			t.actCells[row+sym] = packCell(off, len(acts), acts[0])
			if len(acts) > 1 {
				t.conflicts = append(t.conflicts, Conflict{
					State: state, Term: grammar.Sym(sym),
					Actions: t.actSpill[off : off+len(acts)],
				})
				t.conflictState[state] = true
			}
		}
	}
	tb.actions = nil
	tb.precomputeNontermActions()
	tb.precomputeFusedChains()
	return t
}

// resolve applies precedence/associativity and the optional prefer-shift /
// prefer-earlier-rule filters to a conflicted cell.
func (tb *tableBuilder) resolve(state int, term grammar.Sym, acts []Action) []Action {
	g := tb.g
	if !tb.opts.NoPrecedence {
		termPrec := g.Symbol(term).Prec
		termAssoc := g.Symbol(term).Assoc
		hasShift := false
		for _, a := range acts {
			if a.Kind == Shift {
				hasShift = true
			}
		}
		// Yacc-style resolution applies only to shift/reduce pairs where
		// both sides carry a declared precedence.
		if hasShift && termPrec > 0 {
			drop := make([]bool, len(acts))
			dropShift := false
			rule := ""
			for i, a := range acts {
				if a.Kind != Reduce {
					continue
				}
				p := g.Production(int(a.Target))
				if p.Prec == 0 {
					continue
				}
				switch {
				case p.Prec > termPrec:
					dropShift = true
					rule = "precedence"
				case p.Prec < termPrec:
					drop[i] = true
					rule = "precedence"
				default:
					switch termAssoc {
					case grammar.AssocLeft:
						dropShift = true
						rule = "associativity"
					case grammar.AssocRight:
						drop[i] = true
						rule = "associativity"
					case grammar.AssocNonassoc:
						drop[i] = true
						dropShift = true
						rule = "nonassoc"
					}
				}
			}
			if rule != "" {
				var kept, dropped []Action
				for i, a := range acts {
					if drop[i] || (dropShift && a.Kind == Shift) {
						dropped = append(dropped, a)
					} else {
						kept = append(kept, a)
					}
				}
				if len(dropped) > 0 {
					keptAct := Action{}
					if len(kept) > 0 {
						keptAct = kept[0]
					}
					tb.t.resolutions = append(tb.t.resolutions, Resolution{
						State: state, Term: term, Kept: keptAct, Dropped: dropped, Rule: rule,
					})
					acts = kept
				}
			}
		}
	}
	if len(acts) > 1 && tb.opts.PreferShift {
		var shift *Action
		for i := range acts {
			if acts[i].Kind == Shift {
				shift = &acts[i]
				break
			}
		}
		if shift != nil {
			dropped := make([]Action, 0, len(acts)-1)
			for _, a := range acts {
				if a != *shift {
					dropped = append(dropped, a)
				}
			}
			tb.t.resolutions = append(tb.t.resolutions, Resolution{
				State: state, Term: term, Kept: *shift, Dropped: dropped, Rule: "prefer-shift",
			})
			acts = []Action{*shift}
		}
	}
	if len(acts) > 1 && tb.opts.PreferEarlierRule {
		reduces := 0
		best := -1
		for _, a := range acts {
			if a.Kind == Reduce {
				reduces++
				if best < 0 || int(a.Target) < best {
					best = int(a.Target)
				}
			}
		}
		if reduces > 1 {
			var kept []Action
			var dropped []Action
			for _, a := range acts {
				if a.Kind == Reduce && int(a.Target) != best {
					dropped = append(dropped, a)
				} else {
					kept = append(kept, a)
				}
			}
			tb.t.resolutions = append(tb.t.resolutions, Resolution{
				State: state, Term: term, Kept: Action{Kind: Reduce, Target: int32(best)},
				Dropped: dropped, Rule: "prefer-reduce",
			})
			acts = kept
		}
	}
	return acts
}

// precomputeNontermActions fills ntCells per the paper's optimization: when
// every terminal in FIRST(nt) has the identical cell in a state, that cell
// word (offset, count, inline action) is copied verbatim — the nonterminal
// lookup then shares the spill storage of its witnessing terminal.
func (tb *tableBuilder) precomputeNontermActions() {
	t := tb.t
	g := tb.g
	t.ntCells = make([]uint64, t.numStates*tb.nSyms)
	for state := 0; state < t.numStates; state++ {
		row := state * tb.nSyms
		for _, nt := range g.Nonterminals() {
			if g.Nullable(nt) {
				continue // ε-deriving nonterminals are excluded (§3.2)
			}
			first := g.First(nt)
			var common []Action
			var commonCell uint64
			ok := true
			firstIter := true
			first.ForEach(func(term grammar.Sym) {
				if !ok {
					return
				}
				acts := t.Actions(state, term)
				if firstIter {
					common = acts
					commonCell = t.actCells[row+int(term)]
					firstIter = false
					return
				}
				if !sameActions(common, acts) {
					ok = false
				}
			})
			if ok && !firstIter && len(common) > 0 {
				t.ntCells[row+int(nt)] = commonCell
			}
		}
	}
}

func sameActions(a, b []Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
