package lr

import (
	"testing"

	"iglr/internal/grammar"
)

// The dragon-book expression grammar (Aho et al., grammar 4.1): its SLR(1)
// automaton famously has 12 states. A concrete anchor that the item-set
// construction matches the literature.
const dragonSrc = `
%token id '+' '*' '(' ')'
%start E
E : E '+' T | T ;
T : T '*' F | F ;
F : '(' E ')' | id ;
`

func TestDragonBookStateCount(t *testing.T) {
	for _, m := range []Method{SLR, LALR} {
		tbl := build(t, dragonSrc, Options{Method: m})
		if tbl.NumStates() != 12 {
			t.Fatalf("%v: %d states, the literature says 12", m, tbl.NumStates())
		}
		if !tbl.Deterministic() {
			t.Fatalf("%v: conflicts:\n%s", m, tbl.DescribeConflicts())
		}
	}
	// Canonical LR(1) is strictly larger for this grammar.
	lr1 := build(t, dragonSrc, Options{Method: LR1})
	if lr1.NumStates() <= 12 {
		t.Fatalf("LR(1) states = %d, want > 12", lr1.NumStates())
	}
}

func TestDragonBookParses(t *testing.T) {
	tbl := build(t, dragonSrc, Options{Method: SLR})
	g := tbl.Grammar()
	accept := [][]string{
		{"id"},
		{"id", "'+'", "id"},
		{"id", "'+'", "id", "'*'", "id"},
		{"'('", "id", "'+'", "id", "')'", "'*'", "id"},
		{"'('", "'('", "id", "')'", "')'"},
	}
	reject := [][]string{
		{},
		{"'+'"},
		{"id", "id"},
		{"'('", "id"},
		{"id", "'+'"},
		{"'('", "')'"},
	}
	for _, in := range accept {
		if !run(t, tbl, toSyms(t, g, in...)) {
			t.Fatalf("should accept %v", in)
		}
	}
	for _, in := range reject {
		if run(t, tbl, toSyms(t, g, in...)) {
			t.Fatalf("should reject %v", in)
		}
	}
}

// TestMethodsAgreeOnDeterministicGrammars: whenever two construction
// methods both produce conflict-free tables for a grammar, they must accept
// exactly the same strings.
func TestMethodsAgreeOnDeterministicGrammars(t *testing.T) {
	grammars := []string{
		dragonSrc,
		"%token a b\n%start S\nS : a S b | ;",
		"%token x ';'\n%start B\nB : Stmt* ;\nStmt : x ';' ;",
		"%token a b c\n%start S\nS : A B c ;\nA : a | ;\nB : b | ;",
	}
	inputsFor := func(g *grammar.Grammar) [][]grammar.Sym {
		terms := g.Terminals()
		var real []grammar.Sym
		for _, tm := range terms {
			if tm != grammar.EOF && tm != grammar.ErrorSym {
				real = append(real, tm)
			}
		}
		// All strings up to length 4 over the terminal alphabet.
		var out [][]grammar.Sym
		var gen func(prefix []grammar.Sym, depth int)
		gen = func(prefix []grammar.Sym, depth int) {
			out = append(out, append([]grammar.Sym(nil), prefix...))
			if depth == 0 {
				return
			}
			for _, tm := range real {
				gen(append(prefix, tm), depth-1)
			}
		}
		gen(nil, 4)
		return out
	}
	for gi, src := range grammars {
		tables := map[Method]*Table{}
		for _, m := range []Method{SLR, LALR, LR1} {
			tbl := build(t, src, Options{Method: m})
			if tbl.Deterministic() {
				tables[m] = tbl
			}
		}
		if len(tables) < 2 {
			continue
		}
		var ref *Table
		var refM Method
		for m, tbl := range tables {
			ref, refM = tbl, m
			break
		}
		for _, input := range inputsFor(ref.Grammar()) {
			want := run(t, ref, input)
			for m, tbl := range tables {
				if m == refM {
					continue
				}
				if got := run(t, tbl, input); got != want {
					t.Fatalf("grammar %d: %v vs %v disagree on %v (%v vs %v)",
						gi, refM, m, input, want, got)
				}
			}
		}
	}
}

func TestActionStringFormats(t *testing.T) {
	cases := map[Action]string{
		{Kind: Shift, Target: 5}:  "s5",
		{Kind: Reduce, Target: 3}: "r3",
		{Kind: Accept}:            "acc",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("%v.String() = %q, want %q", a, a.String(), want)
		}
	}
	for m, want := range map[Method]string{SLR: "SLR(1)", LALR: "LALR(1)", LR1: "LR(1)"} {
		if m.String() != want {
			t.Fatalf("method string %q != %q", m.String(), want)
		}
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	g, err := grammar.Parse("%token a\n%start S\nS : a ;")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method should error")
	}
}
