// Package recovery implements the paper's history-sensitive, non-correcting
// error recovery (§4.3, [27]): when a reparse fails, the user's
// modifications since the last consistent version are replayed one at a
// time, and only those that yield at least one valid parse tree are
// incorporated. The remainder are reverted and reported as unincorporated
// material — the document always converges to a consistent tree, and the
// erroneous edits are flagged rather than "corrected". The approach is
// automated, language independent and incremental: each probe is an
// incremental parse over mostly reused structure.
//
// In the two-tier scheme this package is tier 2: sessions first attempt
// text-preserving error isolation (internal/isolate) and only replay
// history when the damage cannot be bounded. Replay is history-sensitive
// and so may revert text; isolation never does.
//
// Non-deterministic regions are treated atomically by construction: an
// edit inside an ambiguous region invalidates (and reparses) the whole
// region, so partial update incorporation within one cannot occur.
package recovery

import (
	"context"
	"errors"
	"sort"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/guard"
)

// ParseFunc runs one incremental parse attempt over the document's current
// state (e.g. wrapping iglr.Parser.Parse with the document's stream).
type ParseFunc func(d *document.Document) (*dag.Node, error)

// IsInfrastructure classifies a parse failure: true for resource-budget
// trips and context cancellation — aborted parses that say nothing about
// whether the text is syntactically valid. Neither edit replay nor error
// isolation may react to these by discarding or quarantining user edits;
// they must surface unchanged with the pending edits intact so the caller
// can retry under a bigger budget.
func IsInfrastructure(err error) bool {
	return err != nil &&
		(errors.Is(err, guard.ErrBudget) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded))
}

// Outcome reports a recovery run.
type Outcome struct {
	// Root is the committed tree after recovery.
	Root *dag.Node
	// Incorporated holds the edits that were kept.
	Incorporated []document.AppliedEdit
	// Unincorporated holds the reverted edits, in application order —
	// the "unincorporated material" the environment flags to the user.
	Unincorporated []document.AppliedEdit
	// Clean reports that the initial parse succeeded with no recovery.
	Clean bool
	// Isolated reports that tier-1 error isolation produced Root: the
	// user's text was preserved verbatim and the damage is quarantined
	// under ErrorRegions error nodes in the committed tree. Set by the
	// session layer, never by this package.
	Isolated bool
	// ErrorRegions counts the error nodes in Root when Isolated.
	ErrorRegions int
	// Err is non-nil in two cases. An infrastructure failure (budget trip,
	// cancellation — see IsInfrastructure) aborts recovery immediately:
	// the pending edits are left intact for a retry and no text is
	// reverted. Otherwise Err reports a failed first parse with no history
	// to fall back on; then the document is restored to its baseline text
	// — the pending edits are reverted and reported in Unincorporated —
	// and Root is non-nil if the baseline text itself parses.
	Err error
}

// site records one divergence between the recorded edit history's
// coordinate space and the document: at pos (in the space later edits were
// recorded in), the history has insLen bytes of inserted text the document
// never received, while the document still holds the remLen bytes the
// skipped edit would have removed.
type site struct{ pos, insLen, remLen int }

// replayMap translates offsets from the recorded-history coordinate space
// to current document offsets as edits are skipped. The recorded space
// always advances with every processed edit (each later edit was recorded
// on top of all earlier ones, incorporated or not); the document only
// advances for incorporated ones, and the sites track the difference.
type replayMap struct{ sites []site }

// adjust maps an offset in the current recorded space to a document
// offset. Offsets inside a skipped edit's phantom inserted text clamp to
// the site start — the least-surprising anchor for an edit whose base text
// never made it into the document.
func (m *replayMap) adjust(off int) int {
	shift := 0
	for _, s := range m.sites {
		if off >= s.pos+s.insLen {
			shift += s.remLen - s.insLen
			continue
		}
		if off > s.pos {
			off = s.pos
		}
		break
	}
	return off + shift
}

// advance moves every site across a processed edit (at, remLen, insLen) in
// the recorded space, bringing the map into the space the next recorded
// edit used. Sites overlapping the edit clamp to its start — an
// approximation; replay's probe-and-content checks turn any residual
// imprecision into a skipped edit rather than corruption.
func (m *replayMap) advance(at, remLen, insLen int) {
	delta := insLen - remLen
	for i := range m.sites {
		s := &m.sites[i]
		switch {
		case s.pos >= at+remLen:
			s.pos += delta
		case s.pos+s.insLen <= at:
			// entirely before the edit: unchanged
		default:
			s.pos = at
		}
	}
}

// skip records edit e as unincorporated in the current recorded space.
func (m *replayMap) skip(e document.AppliedEdit) {
	m.sites = append(m.sites, site{pos: e.Offset, insLen: len(e.Inserted), remLen: len(e.Removed)})
	sort.Slice(m.sites, func(i, j int) bool { return m.sites[i].pos < m.sites[j].pos })
}

// Parse parses the document, recovering via edit replay on failure. On
// success (with or without recovery) the resulting tree is committed.
// Infrastructure failures (IsInfrastructure) abort immediately with the
// pending edits intact.
func Parse(d *document.Document, parse ParseFunc) Outcome {
	root, err := parse(d)
	if err == nil {
		out := Outcome{Root: root, Incorporated: d.PendingEdits(), Clean: true}
		d.Commit(root)
		return out
	}
	if IsInfrastructure(err) {
		return Outcome{Err: err}
	}
	if d.Root() == nil {
		// No prior consistent version exists, so edit replay has no
		// baseline tree. Still converge: revert the pending edits
		// (restoring the creation-time text), report them as
		// unincorporated, and commit the baseline if it parses — a
		// failed first parse must not leave the document holding text
		// no tree will ever correspond to.
		out := Outcome{Err: err, Unincorporated: d.PendingEdits()}
		if len(out.Unincorporated) == 0 {
			// The creation-time text itself is the failure; there is
			// nothing to revert and re-probing it would just fail again.
			return out
		}
		d.RevertPending()
		if root, berr := parse(d); berr == nil {
			d.Commit(root)
			out.Root = root
		}
		return out
	}

	pending := d.PendingEdits()
	d.RevertPending()

	var out Outcome
	var m replayMap
	for i, e := range pending {
		if off, ok := m.locate(d, e); !ok {
			out.Unincorporated = append(out.Unincorporated, e)
			m.advance(e.Offset, len(e.Removed), len(e.Inserted))
			m.skip(e)
			continue
		} else {
			d.Replace(off, len(e.Removed), e.Inserted)
			root, perr := parse(d)
			if perr == nil {
				d.Commit(root)
				out.Incorporated = append(out.Incorporated, e)
				m.advance(e.Offset, len(e.Removed), len(e.Inserted))
				continue
			}
			d.RevertPending()
			if IsInfrastructure(perr) {
				// The probe was aborted, not rejected: stop replaying and
				// restore the remaining history as pending edits so a
				// retry under a bigger budget sees the user's text.
				out.Err = perr
				m.restore(d, pending[i:])
				out.Root = d.Root()
				return out
			}
			out.Unincorporated = append(out.Unincorporated, e)
			m.advance(e.Offset, len(e.Removed), len(e.Inserted))
			m.skip(e)
		}
	}
	out.Root = d.Root()
	return out
}

// locate maps edit e's recorded offset into the document and validates it:
// the offset must be in range and the text it would remove must still be
// present verbatim. A failed check means surrounding skipped edits changed
// the ground under e, so e cannot be replayed faithfully.
func (m *replayMap) locate(d *document.Document, e document.AppliedEdit) (int, bool) {
	off := m.adjust(e.Offset)
	if off < 0 || off > d.Len() || off+len(e.Removed) > d.Len() {
		return 0, false
	}
	if len(e.Removed) > 0 && d.Text()[off:off+len(e.Removed)] != e.Removed {
		return 0, false
	}
	return off, true
}

// restore reapplies the given recorded edits to the document as pending
// (unparsed, uncommitted) edits after an aborted replay, so the document
// again holds the user's text and history. Edits that no longer locate
// cleanly are dropped into the map as skips — the same degradation a
// failed probe produces.
func (m *replayMap) restore(d *document.Document, rest []document.AppliedEdit) {
	for _, e := range rest {
		if off, ok := m.locate(d, e); ok {
			d.Replace(off, len(e.Removed), e.Inserted)
			m.advance(e.Offset, len(e.Removed), len(e.Inserted))
			continue
		}
		m.advance(e.Offset, len(e.Removed), len(e.Inserted))
		m.skip(e)
	}
}
