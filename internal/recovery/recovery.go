// Package recovery implements the paper's history-sensitive, non-correcting
// error recovery (§4.3, [27]): when a reparse fails, the user's
// modifications since the last consistent version are replayed one at a
// time, and only those that yield at least one valid parse tree are
// incorporated. The remainder are reverted and reported as unincorporated
// material — the document always converges to a consistent tree, and the
// erroneous edits are flagged rather than "corrected". The approach is
// automated, language independent and incremental: each probe is an
// incremental parse over mostly reused structure.
//
// Non-deterministic regions are treated atomically by construction: an
// edit inside an ambiguous region invalidates (and reparses) the whole
// region, so partial update incorporation within one cannot occur.
package recovery

import (
	"iglr/internal/dag"
	"iglr/internal/document"
)

// ParseFunc runs one incremental parse attempt over the document's current
// state (e.g. wrapping iglr.Parser.Parse with the document's stream).
type ParseFunc func(d *document.Document) (*dag.Node, error)

// Outcome reports a recovery run.
type Outcome struct {
	// Root is the committed tree after recovery.
	Root *dag.Node
	// Incorporated holds the edits that were kept.
	Incorporated []document.AppliedEdit
	// Unincorporated holds the reverted edits, in application order —
	// the "unincorporated material" the environment flags to the user.
	Unincorporated []document.AppliedEdit
	// Clean reports that the initial parse succeeded with no recovery.
	Clean bool
	// Err is non-nil only when there is no history to fall back on (the
	// very first parse of a document failed). Even then the document is
	// restored to its baseline text — the pending edits are reverted and
	// reported in Unincorporated — so the session is left in a known
	// state rather than holding the unparseable mixture. Root is non-nil
	// if the baseline text itself parses.
	Err error
}

// Parse parses the document, recovering via edit replay on failure. On
// success (with or without recovery) the resulting tree is committed.
func Parse(d *document.Document, parse ParseFunc) Outcome {
	root, err := parse(d)
	if err == nil {
		out := Outcome{Root: root, Incorporated: d.PendingEdits(), Clean: true}
		d.Commit(root)
		return out
	}
	if d.Root() == nil {
		// No prior consistent version exists, so edit replay has no
		// baseline tree. Still converge: revert the pending edits
		// (restoring the creation-time text), report them as
		// unincorporated, and commit the baseline if it parses — a
		// failed first parse must not leave the document holding text
		// no tree will ever correspond to.
		out := Outcome{Err: err, Unincorporated: d.PendingEdits()}
		if len(out.Unincorporated) == 0 {
			// The creation-time text itself is the failure; there is
			// nothing to revert and re-probing it would just fail again.
			return out
		}
		d.RevertPending()
		if root, berr := parse(d); berr == nil {
			d.Commit(root)
			out.Root = root
		}
		return out
	}

	pending := d.PendingEdits()
	d.RevertPending()

	var out Outcome
	// Offsets of later edits were recorded in a world where earlier edits
	// had been applied; skipping an edit shifts positions after it.
	type skip struct{ pos, delta int }
	var skips []skip
	adjust := func(off int) int {
		for _, s := range skips {
			if off >= s.pos {
				off -= s.delta
			}
		}
		return off
	}

	for _, e := range pending {
		off := adjust(e.Offset)
		if off < 0 || off+len(e.Inserted) > d.Len()+len(e.Inserted) {
			out.Unincorporated = append(out.Unincorporated, e)
			skips = append(skips, skip{pos: e.Offset, delta: len(e.Inserted) - len(e.Removed)})
			continue
		}
		if off+len(e.Removed) > d.Len() {
			out.Unincorporated = append(out.Unincorporated, e)
			skips = append(skips, skip{pos: e.Offset, delta: len(e.Inserted) - len(e.Removed)})
			continue
		}
		d.Replace(off, len(e.Removed), e.Inserted)
		root, err := parse(d)
		if err != nil {
			d.RevertPending()
			out.Unincorporated = append(out.Unincorporated, e)
			skips = append(skips, skip{pos: e.Offset, delta: len(e.Inserted) - len(e.Removed)})
			continue
		}
		d.Commit(root)
		out.Incorporated = append(out.Incorporated, e)
	}
	out.Root = d.Root()
	return out
}
