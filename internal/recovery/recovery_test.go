package recovery_test

import (
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/iglr"
	"iglr/internal/langs/csub"
	"iglr/internal/recovery"
)

func parser() recovery.ParseFunc {
	l := csub.Lang()
	return func(d *document.Document) (*dag.Node, error) {
		p := iglr.New(l.Table)
		return p.Parse(d.Stream())
	}
}

func TestCleanParse(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; a = 1;")
	out := recovery.Parse(d, parser())
	if out.Err != nil || !out.Clean || out.Root == nil {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestFirstParseFailureHasNoFallback(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int ;;;")
	out := recovery.Parse(d, parser())
	if out.Err == nil {
		t.Fatal("expected an unrecoverable error on first parse")
	}
}

func TestBadEditReverted(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; a = 1; int b;")
	recovery.Parse(d, parser())

	// A good edit and a bad one.
	d.Replace(4, 1, "x") // rename a → x (decl)
	d.Replace(11, 1, "") // delete '=' → syntax error
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatalf("recovery failed: %v", out.Err)
	}
	if len(out.Incorporated) != 1 || len(out.Unincorporated) != 1 {
		t.Fatalf("inc=%d uninc=%d", len(out.Incorporated), len(out.Unincorporated))
	}
	// The good rename survives; the deletion was reverted.
	if got := d.Text(); got != "int x; a = 1; int b;" {
		t.Fatalf("text = %q", got)
	}
	if out.Root == nil || out.Root != d.Root() {
		t.Fatal("root not committed")
	}
}

func TestAllEditsBad(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a;")
	recovery.Parse(d, parser())
	orig := d.Text()

	d.Replace(0, 3, ")))")
	d.Replace(5, 1, "(")
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatalf("recovery errored: %v", out.Err)
	}
	if len(out.Unincorporated) != 2 || len(out.Incorporated) != 0 {
		t.Fatalf("inc=%d uninc=%d", len(out.Incorporated), len(out.Unincorporated))
	}
	if d.Text() != orig {
		t.Fatalf("text = %q, want reverted %q", d.Text(), orig)
	}
}

func TestManyIndependentEdits(t *testing.T) {
	l := csub.Lang()
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("int v; ")
	}
	d := l.NewDocument(sb.String())
	recovery.Parse(d, parser())

	// Edit statements 2, 5, 8; make 5's edit invalid.
	d.Replace(2*7+4, 1, "a")
	d.Replace(5*7+4, 1, "(")
	d.Replace(8*7+4, 1, "b")
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Incorporated) != 2 || len(out.Unincorporated) != 1 {
		t.Fatalf("inc=%d uninc=%d text=%q", len(out.Incorporated), len(out.Unincorporated), d.Text())
	}
	if !strings.Contains(d.Text(), "int a;") || !strings.Contains(d.Text(), "int b;") {
		t.Fatalf("good edits missing: %q", d.Text())
	}
	if strings.Contains(d.Text(), "(") {
		t.Fatalf("bad edit kept: %q", d.Text())
	}
}

func TestOffsetAdjustmentAfterSkippedEdit(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; int b;")
	recovery.Parse(d, parser())

	// First edit inserts garbage (will be reverted and shifts offsets);
	// second edit renames b, recorded at a shifted offset.
	d.Replace(0, 0, "((( ")
	d.Replace(4+11, 1, "z") // 'b' at 11 in original, +4 for the insertion
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Incorporated) != 1 || len(out.Unincorporated) != 1 {
		t.Fatalf("inc=%d uninc=%d text=%q", len(out.Incorporated), len(out.Unincorporated), d.Text())
	}
	if d.Text() != "int a; int z;" {
		t.Fatalf("text = %q", d.Text())
	}
}
