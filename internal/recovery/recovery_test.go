package recovery_test

import (
	"errors"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/guard"
	"iglr/internal/iglr"
	"iglr/internal/langs/csub"
	"iglr/internal/recovery"
)

func parser() recovery.ParseFunc {
	l := csub.Lang()
	return func(d *document.Document) (*dag.Node, error) {
		p := iglr.New(l.Table)
		return p.Parse(d.Stream())
	}
}

func TestCleanParse(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; a = 1;")
	out := recovery.Parse(d, parser())
	if out.Err != nil || !out.Clean || out.Root == nil {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestFirstParseFailureHasNoFallback(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int ;;;")
	out := recovery.Parse(d, parser())
	if out.Err == nil {
		t.Fatal("expected an unrecoverable error on first parse")
	}
}

func TestBadEditReverted(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; a = 1; int b;")
	recovery.Parse(d, parser())

	// A good edit and a bad one.
	d.Replace(4, 1, "x") // rename a → x (decl)
	d.Replace(11, 1, "") // delete '=' → syntax error
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatalf("recovery failed: %v", out.Err)
	}
	if len(out.Incorporated) != 1 || len(out.Unincorporated) != 1 {
		t.Fatalf("inc=%d uninc=%d", len(out.Incorporated), len(out.Unincorporated))
	}
	// The good rename survives; the deletion was reverted.
	if got := d.Text(); got != "int x; a = 1; int b;" {
		t.Fatalf("text = %q", got)
	}
	if out.Root == nil || out.Root != d.Root() {
		t.Fatal("root not committed")
	}
}

func TestAllEditsBad(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a;")
	recovery.Parse(d, parser())
	orig := d.Text()

	d.Replace(0, 3, ")))")
	d.Replace(5, 1, "(")
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatalf("recovery errored: %v", out.Err)
	}
	if len(out.Unincorporated) != 2 || len(out.Incorporated) != 0 {
		t.Fatalf("inc=%d uninc=%d", len(out.Incorporated), len(out.Unincorporated))
	}
	if d.Text() != orig {
		t.Fatalf("text = %q, want reverted %q", d.Text(), orig)
	}
}

func TestManyIndependentEdits(t *testing.T) {
	l := csub.Lang()
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("int v; ")
	}
	d := l.NewDocument(sb.String())
	recovery.Parse(d, parser())

	// Edit statements 2, 5, 8; make 5's edit invalid.
	d.Replace(2*7+4, 1, "a")
	d.Replace(5*7+4, 1, "(")
	d.Replace(8*7+4, 1, "b")
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Incorporated) != 2 || len(out.Unincorporated) != 1 {
		t.Fatalf("inc=%d uninc=%d text=%q", len(out.Incorporated), len(out.Unincorporated), d.Text())
	}
	if !strings.Contains(d.Text(), "int a;") || !strings.Contains(d.Text(), "int b;") {
		t.Fatalf("good edits missing: %q", d.Text())
	}
	if strings.Contains(d.Text(), "(") {
		t.Fatalf("bad edit kept: %q", d.Text())
	}
}

func TestOffsetAdjustmentAfterSkippedEdit(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; int b;")
	recovery.Parse(d, parser())

	// First edit inserts garbage (will be reverted and shifts offsets);
	// second edit renames b, recorded at a shifted offset.
	d.Replace(0, 0, "((( ")
	d.Replace(4+11, 1, "z") // 'b' at 11 in original, +4 for the insertion
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Incorporated) != 1 || len(out.Unincorporated) != 1 {
		t.Fatalf("inc=%d uninc=%d text=%q", len(out.Incorporated), len(out.Unincorporated), d.Text())
	}
	if d.Text() != "int a; int z;" {
		t.Fatalf("text = %q", d.Text())
	}
}

// Regression: a failed *first* parse (no committed version to fall back
// on) used to leave the document still holding the unparseable edits. It
// must restore the baseline text, report the edits as unincorporated, and
// commit the baseline when that text parses.
func TestFirstParseFailureRestoresBaselineText(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a;")
	d.Replace(0, 3, ")))") // poison before any parse
	out := recovery.Parse(d, parser())
	if out.Err == nil {
		t.Fatal("expected the first parse to fail")
	}
	if d.Text() != "int a;" {
		t.Fatalf("text = %q, want the pre-parse baseline restored", d.Text())
	}
	if len(out.Unincorporated) != 1 || len(out.Incorporated) != 0 {
		t.Fatalf("inc=%d uninc=%d", len(out.Incorporated), len(out.Unincorporated))
	}
	if out.Root == nil || out.Root != d.Root() {
		t.Fatal("the parseable baseline should have been committed")
	}

	// The session is in a known state: a good edit parses incrementally.
	d.Replace(4, 1, "x")
	out = recovery.Parse(d, parser())
	if out.Err != nil || !out.Clean || d.Text() != "int x;" {
		t.Fatalf("follow-up edit: %+v text=%q", out, d.Text())
	}
}

// When the creation-time text itself cannot parse there is nothing to
// restore; the outcome just reports the error.
func TestFirstParseFailureOnBaselineText(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int ;;;")
	out := recovery.Parse(d, parser())
	if out.Err == nil || out.Root != nil {
		t.Fatalf("outcome = %+v", out)
	}
	if d.Text() != "int ;;;" {
		t.Fatalf("text = %q", d.Text())
	}
	if len(out.Unincorporated) != 0 {
		t.Fatal("no edits existed to report")
	}
}

// FuzzRecoveryConverges drives the recovery invariant with arbitrary
// edits: after recovery.Parse the document must be consistent — whenever
// a root is committed, a from-scratch parse of the document's text
// succeeds, and a failed first parse leaves the baseline text in place.
func FuzzRecoveryConverges(f *testing.F) {
	f.Add("int a; a = 1;", 4, 1, "x")
	f.Add("int a;", 0, 3, ")))")
	f.Add("int a; int b;", 0, 0, "((( ")
	f.Add("", 0, 0, "int b;")
	f.Add("int ;;;", 1, 2, "((")
	l := csub.Lang()
	f.Fuzz(func(t *testing.T, src string, off, removed int, ins string) {
		if len(src) > 200 || len(ins) > 50 {
			t.Skip()
		}
		for _, r := range src + ins {
			if r > 0x7f {
				t.Skip() // the csub lexer is ASCII
			}
		}
		d := l.NewDocument(src)
		parse := parser()
		first := recovery.Parse(d, parse)
		baseline := d.Text()

		// Clamp the edit into range (Replace panics out of range by
		// contract; the fuzzer explores positions, not that contract).
		if off < 0 {
			off = -off
		}
		off %= d.Len() + 1
		if removed < 0 {
			removed = -removed
		}
		removed %= d.Len() - off + 1
		d.Replace(off, removed, ins)
		out := recovery.Parse(d, parse)

		if first.Err == nil && out.Err != nil {
			t.Fatalf("recovery errored despite a committed fallback: %v", out.Err)
		}
		if d.Root() != nil {
			if fresh, err := parse(l.NewDocument(d.Text())); err != nil || fresh == nil {
				t.Fatalf("committed document text %q does not reparse: %v", d.Text(), err)
			}
		}
		if out.Err != nil && d.Text() != baseline {
			t.Fatalf("failed recovery left text %q, baseline %q", d.Text(), baseline)
		}
	})
}

// TestMultiSkipOffsetOracle is a hand-computed oracle for the site-based
// offset transform: two bad edits interleave with four good ones, so every
// later edit must be located across one or two skipped sites, including an
// insertion recorded at offset 0 after the skips.
func TestMultiSkipOffsetOracle(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; int b; int c; int d;")
	recovery.Parse(d, parser())

	d.Replace(0, 0, "((( ")    // bad: shifts everything by 4
	d.Replace(8, 1, "aa")      // good: a -> aa ('a' is at 4+4)
	d.Replace(16, 1, "(")      // bad: b -> ( ('b' is at 11+4+1)
	d.Replace(23, 1, "cc")     // good: c -> cc ('c' is at 18+4+1)
	d.Replace(31, 1, "dd")     // good: d -> dd ('d' is at 25+4+1+1)
	d.Replace(0, 0, "int e; ") // good: prepend across the skipped site at 0
	out := recovery.Parse(d, parser())
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Incorporated) != 4 || len(out.Unincorporated) != 2 {
		t.Fatalf("inc=%d uninc=%d text=%q",
			len(out.Incorporated), len(out.Unincorporated), d.Text())
	}
	if got, want := d.Text(), "int e; int aa; int b; int cc; int dd;"; got != want {
		t.Fatalf("text = %q, want %q", got, want)
	}
}

// TestBudgetTripMidReplayRestoresPendingEdits (satellite regression): an
// infrastructure failure on a replay probe must abort recovery without
// consuming the edit history — the error surfaces as ErrBudget, the
// document keeps the fully edited text, and every edit is back in the
// pending set so a later parse with resources restored can process them.
func TestBudgetTripMidReplayRestoresPendingEdits(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; int b;")
	real := parser()
	recovery.Parse(d, real)

	d.Replace(4, 1, "(")  // bad edit
	d.Replace(11, 1, "z") // good edit
	edited := "int (; int z;"
	if d.Text() != edited {
		t.Fatalf("setup text = %q", d.Text())
	}

	// The full-text parse fails with a genuine syntax error; the first
	// replay probe then trips a (simulated) budget.
	calls := 0
	tripping := func(doc *document.Document) (*dag.Node, error) {
		calls++
		if calls >= 2 {
			return nil, &guard.BudgetError{Resource: guard.ResArenaNodes, Limit: 1, Used: 2}
		}
		return real(doc)
	}
	out := recovery.Parse(d, tripping)
	if !errors.Is(out.Err, guard.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", out.Err)
	}
	if len(out.Incorporated) != 0 || len(out.Unincorporated) != 0 {
		t.Fatalf("budget trip consumed edit history: %+v", out)
	}
	if d.Text() != edited {
		t.Fatalf("text = %q, want the edits preserved: %q", d.Text(), edited)
	}
	if got := len(d.PendingEdits()); got != 2 {
		t.Fatalf("pending edits = %d, want both restored", got)
	}

	// With resources back, the same session recovers normally: the bad
	// edit is reverted, the good one incorporated.
	out = recovery.Parse(d, real)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Incorporated) != 1 || len(out.Unincorporated) != 1 {
		t.Fatalf("inc=%d uninc=%d", len(out.Incorporated), len(out.Unincorporated))
	}
	if d.Text() != "int a; int z;" {
		t.Fatalf("text = %q", d.Text())
	}
}
