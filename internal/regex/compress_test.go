package regex

import (
	"bytes"
	"strings"
	"testing"
)

// Pattern sets exercising both branches of the compressed transition layout:
// pure-ASCII rules, ranges straddling the 0..255 dense prefix, and Unicode
// ranges that live only in the sparse edges.
var compressSets = [][]string{
	{`[ \t\r\n]+`, `/\*([^*]|\*+[^*/])*\*+/`, `[A-Za-z_][A-Za-z0-9_]*`, `[0-9]+`, `==`, `=`, `"([^"\\\n]|\\.)*"`},
	{`a|b`, `abc`, `[a-c]+d`},
	{`[α-ω]+`, `[a-z]+`, `[0-9]`},
	{`.`, `..`},
}

// TestDenseMatchesSparse: on a freshly compiled DFA the sparse edge list
// still covers the full rune space, so the dense equivalence-class table and
// the byte fast path must agree with it on every (state, rune<256) pair.
func TestDenseMatchesSparse(t *testing.T) {
	for _, pats := range compressSets {
		d, err := CompileSet(pats)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < d.NumStates(); s++ {
			for r := rune(0); r < 256; r++ {
				sparse := d.stepSparse(s, r)
				if got := d.Step(s, r); got != sparse {
					t.Fatalf("%v: Step(%d, %q) = %d, sparse = %d", pats, s, r, got, sparse)
				}
				if r < 0x80 {
					if got := d.StepByte(s, byte(r)); got != sparse {
						t.Fatalf("%v: StepByte(%d, %q) = %d, sparse = %d", pats, s, r, got, sparse)
					}
				}
			}
		}
	}
}

// TestClosedStates: Closed(s) must hold exactly when no input of any kind
// can leave s — the invariant the lexer's lookahead accounting relies on.
func TestClosedStates(t *testing.T) {
	for _, pats := range compressSets {
		d, err := CompileSet(pats)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < d.NumStates(); s++ {
			hasOut := len(d.edges[s]) > 0
			if d.Closed(s) == hasOut {
				t.Fatalf("%v: Closed(%d) = %v but state has %d edges", pats, s, d.Closed(s), len(d.edges[s]))
			}
		}
	}
}

// TestDFACodecRoundTrip: decode(encode(d)) must behave identically to d on
// the whole Latin-1 range and on sparse Unicode probes, and must re-encode
// byte-identically (the canonical-encoding property the artifact checksum
// relies on).
func TestDFACodecRoundTrip(t *testing.T) {
	probes := []rune{0x100, 0x101, 0x3b1, 0x3c9, 0x4e00, 0x10FFFF}
	for _, pats := range compressSets {
		d, err := CompileSet(pats)
		if err != nil {
			t.Fatal(err)
		}
		enc := d.AppendBinary(nil)
		d2, rest, err := DecodeDFA(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", pats, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: decoder left %d bytes", pats, len(rest))
		}
		if !bytes.Equal(d2.AppendBinary(nil), enc) {
			t.Fatalf("%v: re-encode is not byte-identical", pats)
		}
		if d2.NumStates() != d.NumStates() || d2.NumClasses() != d.NumClasses() {
			t.Fatalf("%v: shape changed: %d/%d states, %d/%d classes",
				pats, d2.NumStates(), d.NumStates(), d2.NumClasses(), d.NumClasses())
		}
		for s := 0; s < d.NumStates(); s++ {
			if d2.Accept(s) != d.Accept(s) || d2.Closed(s) != d.Closed(s) {
				t.Fatalf("%v: state %d accept/closed mismatch", pats, s)
			}
			for r := rune(0); r < 256; r++ {
				if d2.Step(s, r) != d.Step(s, r) {
					t.Fatalf("%v: decoded Step(%d, %q) differs", pats, s, r)
				}
			}
			for _, r := range probes {
				if d2.Step(s, r) != d.Step(s, r) {
					t.Fatalf("%v: decoded Step(%d, %#x) differs", pats, s, r)
				}
			}
		}
	}
}

// TestDFACodecRejectsGarbage: header corruption must error, not panic.
func TestDFACodecRejectsGarbage(t *testing.T) {
	d := MustCompile(`[a-z]+`)
	enc := d.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut += 1 + len(enc)/13 {
		if _, _, err := DecodeDFA(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, _, err := DecodeDFA(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// The before/after of the equivalence-class compression: stepping the DFA
// over realistic program text through the dense byte-class table versus the
// binary-searched sparse edges (the only path before compression).
var stepCorpus = strings.Repeat(`int x = 42; /* note */ if (x == 7) { y = "str"; } `, 64)

func benchStep(b *testing.B, step func(d *DFA, s int, c byte) int) {
	d, err := CompileSet([]string{
		`[ \t\r\n]+`, `/\*([^*]|\*+[^*/])*\*+/`, `[A-Za-z_][A-Za-z0-9_]*`,
		`[0-9]+`, `"([^"\\\n]|\\.)*"`, `==`, `=`, `;`, `\(`, `\)`, `\{`, `\}`,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(stepCorpus)))
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		state := d.Start()
		for j := 0; j < len(stepCorpus); j++ {
			if state = step(d, state, stepCorpus[j]); state == Dead {
				state = d.Start()
			}
		}
		sink += state
	}
	_ = sink
}

func BenchmarkStepDense(b *testing.B) {
	benchStep(b, func(d *DFA, s int, c byte) int { return d.StepByte(s, c) })
}

func BenchmarkStepSparse(b *testing.B) {
	benchStep(b, func(d *DFA, s int, c byte) int { return d.stepSparse(s, rune(c)) })
}
