package regex

import (
	"fmt"
	"sort"
)

// DFA is a deterministic finite automaton over runes with range-compressed
// transitions. State 0 is the start state. Accept values identify which
// rule (pattern index) accepts in a state, with lower indices winning ties.
//
// Transitions are stored twice: a dense equivalence-class-compressed table
// covers the Latin-1 prefix (runes 0..255 — in practice the entire hot
// path, since programming-language lexemes are overwhelmingly ASCII), and
// range-compressed sparse edges cover the rest of the rune space. The
// dense table maps the 256 low runes to k equivalence classes at compile
// time (two runes are equivalent when no state distinguishes them), so the
// scan loop is a single indexed load, trans[state*k+class[b]], and the
// serialized form ships k columns instead of 256.
type DFA struct {
	// edges[s] is sorted by Lo; lookup is a binary search. A freshly
	// compiled DFA carries every transition here; a decoded one carries
	// only ranges above the dense prefix (Hi >= 256).
	edges  [][]dfaEdge
	accept []int // rule index or -1

	// Equivalence-class compression of the Latin-1 prefix.
	numClasses int        // k
	classes    [256]uint8 // rune < 256 → class id
	dense      []int32    // dense[state*k+class] = successor or Dead
	closed     []bool     // closed[s]: no outgoing transition at all
}

type dfaEdge struct {
	rng RuneRange
	to  int32
}

// Compile compiles a single pattern; its accept rule index is 0.
func Compile(pattern string) (*DFA, error) {
	return CompileSet([]string{pattern})
}

// MustCompile is Compile but panics on error.
func MustCompile(pattern string) *DFA {
	d, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return d
}

// CompileSet compiles several patterns into a combined DFA. When multiple
// patterns accept the same string, the smallest pattern index wins — the
// rule-priority convention of lex.
func CompileSet(patterns []string) (*DFA, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("regex: empty pattern set")
	}
	asts := make([]node, len(patterns))
	for i, p := range patterns {
		ast, err := parse(p)
		if err != nil {
			return nil, err
		}
		asts[i] = ast
	}
	n := buildNFA(asts)
	d := minimize(determinize(n))
	d.compress()
	return d, nil
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.accept) }

// Start returns the start state.
func (d *DFA) Start() int { return 0 }

// Dead is the sink returned by Step when no transition exists.
const Dead = -1

// Step advances from state on rune r, returning the next state or Dead.
// Runes below 256 go through the dense equivalence-class table (a decoded
// DFA has no sparse edges for them); the rest binary-search the edges.
func (d *DFA) Step(state int, r rune) int {
	if uint32(r) < 256 {
		return int(d.dense[state*d.numClasses+int(d.classes[r])])
	}
	return d.stepSparse(state, r)
}

// StepByte is the lexer hot-path transition: it advances on a single byte
// through the dense table. The caller must only pass bytes that are whole
// runes (b < utf8.RuneSelf in UTF-8 input).
func (d *DFA) StepByte(state int, b byte) int {
	return int(d.dense[state*d.numClasses+int(d.classes[b])])
}

// stepSparse binary-searches the range-compressed edge list.
func (d *DFA) stepSparse(state int, r rune) int {
	edges := d.edges[state]
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		e := edges[mid]
		switch {
		case r < e.rng.Lo:
			hi = mid
		case r > e.rng.Hi:
			lo = mid + 1
		default:
			return int(e.to)
		}
	}
	return Dead
}

// Accept returns the accepting rule index for state, or -1.
func (d *DFA) Accept(state int) int { return d.accept[state] }

// NumClasses returns the number of byte equivalence classes (k).
func (d *DFA) NumClasses() int { return d.numClasses }

// Closed reports whether state has no outgoing transition at all: no
// further input, of any kind, can extend a recognition that stopped here.
func (d *DFA) Closed(state int) bool { return d.closed[state] }

// Match finds the longest prefix of s accepted by any rule. It returns the
// byte length of the match and the winning rule, or (-1, -1) when no prefix
// matches. The empty match is reported only if a rule accepts ε.
func (d *DFA) Match(s string) (length, rule int) {
	length, rule = -1, -1
	state := 0
	if a := d.accept[state]; a >= 0 {
		length, rule = 0, a
	}
	for i, r := range s {
		state = d.Step(state, r)
		if state == Dead {
			return length, rule
		}
		if a := d.accept[state]; a >= 0 {
			length = i + runeLen(r)
			rule = a
		}
	}
	return length, rule
}

func runeLen(r rune) int {
	switch {
	case r < 0x80:
		return 1
	case r < 0x800:
		return 2
	case r < 0x10000:
		return 3
	default:
		return 4
	}
}

// determinize performs subset construction over a partition of the rune
// space induced by all NFA edge boundaries.
func determinize(n *nfa) *DFA {
	// Compute the alphabet partition: all Lo and Hi+1 boundaries.
	boundarySet := map[rune]bool{}
	for _, st := range n.states {
		for _, e := range st.edges {
			boundarySet[e.rng.Lo] = true
			boundarySet[e.rng.Hi+1] = true
		}
	}
	boundaries := make([]rune, 0, len(boundarySet))
	for b := range boundarySet {
		boundaries = append(boundaries, b)
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })

	closure := func(set []int) []int {
		seen := make(map[int]bool, len(set)*2)
		var out []int
		var stack []int
		for _, s := range set {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out = append(out, s)
			for _, t := range n.states[s].eps {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		sort.Ints(out)
		return out
	}
	key := func(set []int) string {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}

	d := &DFA{}
	var subsets [][]int
	index := map[string]int{}
	addState := func(set []int) int {
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(subsets)
		subsets = append(subsets, set)
		index[k] = id
		accept := -1
		for _, s := range set {
			if a := n.states[s].accept; a >= 0 && (accept < 0 || a < accept) {
				accept = a
			}
		}
		d.accept = append(d.accept, accept)
		d.edges = append(d.edges, nil)
		return id
	}

	addState(closure([]int{n.start}))
	for id := 0; id < len(subsets); id++ {
		set := subsets[id]
		// For each partition cell [b, nextB-1], compute the move set.
		for bi := 0; bi+1 <= len(boundaries); bi++ {
			lo := boundaries[bi]
			var hi rune
			if bi+1 < len(boundaries) {
				hi = boundaries[bi+1] - 1
			} else {
				hi = maxRune
			}
			if lo > maxRune {
				break
			}
			var move []int
			for _, s := range set {
				for _, e := range n.states[s].edges {
					if e.rng.Lo <= lo && hi <= e.rng.Hi {
						move = append(move, e.to)
					}
				}
			}
			if len(move) == 0 {
				continue
			}
			to := addState(closure(move))
			// Merge with previous edge when contiguous and same target.
			edges := d.edges[id]
			if k := len(edges) - 1; k >= 0 && edges[k].to == int32(to) && edges[k].rng.Hi+1 == lo {
				d.edges[id][k].rng.Hi = hi
			} else {
				d.edges[id] = append(d.edges[id], dfaEdge{rng: RuneRange{lo, hi}, to: int32(to)})
			}
		}
	}
	return d
}

// minimize applies Moore partition refinement. Accepting states are
// distinguished by rule index.
func minimize(d *DFA) *DFA {
	n := d.NumStates()
	// Initial partition by accept value.
	part := make([]int, n)
	classOf := map[int]int{}
	numClasses := 0
	for s := 0; s < n; s++ {
		a := d.accept[s]
		c, ok := classOf[a]
		if !ok {
			c = numClasses
			numClasses++
			classOf[a] = c
		}
		part[s] = c
	}

	// Refine until stable, using transition signatures over the boundary
	// partition of each state's edges.
	for {
		sig := make([]string, n)
		for s := 0; s < n; s++ {
			b := make([]byte, 0, 16)
			b = append(b, byte(part[s]), byte(part[s]>>8))
			for _, e := range d.edges[s] {
				b = append(b,
					byte(e.rng.Lo), byte(e.rng.Lo>>8), byte(e.rng.Lo>>16),
					byte(e.rng.Hi), byte(e.rng.Hi>>8), byte(e.rng.Hi>>16),
					byte(part[e.to]), byte(part[e.to]>>8))
			}
			sig[s] = string(b)
		}
		newClass := map[string]int{}
		newPart := make([]int, n)
		next := 0
		for s := 0; s < n; s++ {
			c, ok := newClass[sig[s]]
			if !ok {
				c = next
				next++
				newClass[sig[s]] = c
			}
			newPart[s] = c
		}
		if next == numClasses {
			break
		}
		part = newPart
		numClasses = next
	}

	// Rebuild with class representatives; keep class of start state as 0.
	remap := make([]int32, numClasses)
	for i := range remap {
		remap[i] = -1
	}
	order := make([]int, 0, numClasses)
	// BFS from start to keep reachable classes only and make start class 0.
	startClass := part[0]
	remap[startClass] = 0
	order = append(order, 0) // representative state index
	reprOf := map[int]int{startClass: 0}
	queue := []int{0}
	nextID := int32(1)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range d.edges[s] {
			c := part[e.to]
			if remap[c] < 0 {
				remap[c] = nextID
				nextID++
				reprOf[c] = int(e.to)
				order = append(order, int(e.to))
				queue = append(queue, int(e.to))
			}
		}
	}
	out := &DFA{
		edges:  make([][]dfaEdge, len(order)),
		accept: make([]int, len(order)),
	}
	for newID, repr := range order {
		out.accept[newID] = d.accept[repr]
		var edges []dfaEdge
		for _, e := range d.edges[repr] {
			to := remap[part[e.to]]
			if k := len(edges) - 1; k >= 0 && edges[k].to == to && edges[k].rng.Hi+1 == e.rng.Lo {
				edges[k].rng.Hi = e.rng.Hi
			} else {
				edges = append(edges, dfaEdge{rng: e.rng, to: to})
			}
		}
		out.edges[newID] = edges
	}
	return out
}

// compress builds the equivalence-class-compressed dense table over the
// Latin-1 prefix from the sparse edges. Two runes are equivalent when every
// state sends them to the same successor; classes are numbered in order of
// first appearance (rune value ascending), so the partition is canonical.
func (d *DFA) compress() {
	n := d.NumStates()
	classID := map[string]uint8{}
	var reps []rune
	sig := make([]byte, 0, 4*n)
	for r := rune(0); r < 256; r++ {
		sig = sig[:0]
		for s := 0; s < n; s++ {
			t := d.stepSparse(s, r)
			sig = append(sig, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
		}
		id, ok := classID[string(sig)]
		if !ok {
			id = uint8(len(reps))
			classID[string(sig)] = id
			reps = append(reps, r)
		}
		d.classes[r] = id
	}
	k := len(reps)
	d.numClasses = k
	d.dense = make([]int32, n*k)
	for s := 0; s < n; s++ {
		for c, r := range reps {
			d.dense[s*k+c] = int32(d.stepSparse(s, r))
		}
	}
	d.computeClosed()
}

// computeClosed derives the per-state closed flags from whichever
// transition representations the DFA carries (dense prefix + sparse edges
// above it).
func (d *DFA) computeClosed() {
	n := d.NumStates()
	k := d.numClasses
	d.closed = make([]bool, n)
	for s := 0; s < n; s++ {
		open := false
		for c := 0; c < k && !open; c++ {
			open = d.dense[s*k+c] != Dead
		}
		for _, e := range d.edges[s] {
			if open {
				break
			}
			open = e.rng.Hi >= 256
		}
		d.closed[s] = !open
	}
}
