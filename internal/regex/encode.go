package regex

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization of minimized DFAs for compiled language artifacts.
// The wire format ships the equivalence-class-compressed form: the accept
// vector, the 256-entry class map, the dense state×class transition table,
// and only the sparse edges above the Latin-1 prefix. Decoding therefore
// reconstructs a ready-to-scan DFA without re-running regex parsing, subset
// construction, or minimization.

const dfaMagic = "IGDF"
const dfaVersion = 1

// maxDFAStates bounds decoded automaton size; the largest bundled language
// is two orders of magnitude below this.
const maxDFAStates = 1 << 20

// AppendBinary serializes d to buf.
func (d *DFA) AppendBinary(buf []byte) []byte {
	buf = append(buf, dfaMagic...)
	buf = binary.AppendUvarint(buf, dfaVersion)
	n := d.NumStates()
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, a := range d.accept {
		buf = binary.AppendVarint(buf, int64(a))
	}
	buf = binary.AppendUvarint(buf, uint64(d.numClasses))
	buf = append(buf, d.classes[:]...)
	for _, t := range d.dense {
		buf = binary.AppendVarint(buf, int64(t))
	}
	// Sparse edges above the dense prefix, clamped to [256, …]. Clamping is
	// idempotent, so re-encoding a decoded DFA is byte-identical.
	for s := 0; s < n; s++ {
		cnt := 0
		for _, e := range d.edges[s] {
			if e.rng.Hi >= 256 {
				cnt++
			}
		}
		buf = binary.AppendUvarint(buf, uint64(cnt))
		for _, e := range d.edges[s] {
			if e.rng.Hi < 256 {
				continue
			}
			lo := e.rng.Lo
			if lo < 256 {
				lo = 256
			}
			buf = binary.AppendUvarint(buf, uint64(lo))
			buf = binary.AppendUvarint(buf, uint64(e.rng.Hi))
			buf = binary.AppendUvarint(buf, uint64(e.to))
		}
	}
	return buf
}

// DecodeDFA reconstructs a DFA serialized by AppendBinary, returning the
// remaining bytes. Every structural invariant (state counts, class ids,
// transition targets, edge ordering) is validated so corrupt input yields
// an error rather than a panic downstream.
func DecodeDFA(data []byte) (*DFA, []byte, error) {
	r := &dfaReader{data: data}
	if string(r.bytes(4)) != dfaMagic {
		return nil, nil, fmt.Errorf("regex: bad DFA magic")
	}
	if v := r.uvarint(); v != dfaVersion {
		return nil, nil, fmt.Errorf("regex: unsupported DFA version %d", v)
	}
	n := int(r.uvarint())
	if r.err != nil || n <= 0 || n > maxDFAStates {
		return nil, nil, fmt.Errorf("regex: invalid DFA state count %d", n)
	}
	d := &DFA{accept: make([]int, n)}
	for i := range d.accept {
		a := int(r.varint())
		if a < -1 {
			return nil, nil, fmt.Errorf("regex: invalid accept value %d", a)
		}
		d.accept[i] = a
	}
	k := int(r.uvarint())
	if r.err != nil || k <= 0 || k > 256 {
		return nil, nil, fmt.Errorf("regex: invalid class count %d", k)
	}
	d.numClasses = k
	copy(d.classes[:], r.bytes(256))
	for _, c := range d.classes {
		if int(c) >= k {
			return nil, nil, fmt.Errorf("regex: class id %d out of range", c)
		}
	}
	d.dense = make([]int32, n*k)
	for i := range d.dense {
		t := r.varint()
		if t < Dead || t >= int64(n) {
			return nil, nil, fmt.Errorf("regex: dense target %d out of range", t)
		}
		d.dense[i] = int32(t)
	}
	d.edges = make([][]dfaEdge, n)
	for s := 0; s < n; s++ {
		cnt := int(r.uvarint())
		if r.err != nil || cnt < 0 || cnt > len(r.data) {
			return nil, nil, fmt.Errorf("regex: invalid edge count")
		}
		if cnt == 0 {
			continue
		}
		edges := make([]dfaEdge, cnt)
		prev := rune(255)
		for i := range edges {
			lo := rune(r.uvarint())
			hi := rune(r.uvarint())
			to := int64(r.uvarint())
			if r.err != nil || lo <= prev || hi < lo || hi > maxRune || to < 0 || to >= int64(n) {
				return nil, nil, fmt.Errorf("regex: invalid edge")
			}
			edges[i] = dfaEdge{rng: RuneRange{lo, hi}, to: int32(to)}
			prev = hi
		}
		d.edges[s] = edges
	}
	if r.err != nil {
		return nil, nil, fmt.Errorf("regex: truncated DFA: %w", r.err)
	}
	d.computeClosed()
	return d, r.data, nil
}

type dfaReader struct {
	data []byte
	err  error
}

func (r *dfaReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("unexpected end of data")
	}
}

func (r *dfaReader) bytes(n int) []byte {
	if n < 0 || len(r.data) < n {
		r.fail()
		if n < 0 {
			n = 0
		}
		return make([]byte, n)
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

func (r *dfaReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *dfaReader) varint() int64 {
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}
