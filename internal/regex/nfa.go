package regex

// nfaState is a Thompson NFA state. accept < 0 means non-accepting;
// otherwise it is the rule index that accepts here.
type nfaState struct {
	eps    []int
	edges  []nfaEdge
	accept int
}

type nfaEdge struct {
	rng RuneRange
	to  int
}

type nfa struct {
	states []nfaState
	start  int
}

// nfaBuilder assembles the combined NFA for a set of patterns.
type nfaBuilder struct {
	n nfa
}

func (b *nfaBuilder) newState() int {
	b.n.states = append(b.n.states, nfaState{accept: -1})
	return len(b.n.states) - 1
}

func (b *nfaBuilder) eps(from, to int) {
	b.n.states[from].eps = append(b.n.states[from].eps, to)
}

func (b *nfaBuilder) edge(from int, rng RuneRange, to int) {
	b.n.states[from].edges = append(b.n.states[from].edges, nfaEdge{rng: rng, to: to})
}

// build compiles an AST fragment, returning (entry, exit) states.
func (b *nfaBuilder) build(n node) (int, int) {
	switch t := n.(type) {
	case emptyNode:
		s := b.newState()
		e := b.newState()
		b.eps(s, e)
		return s, e
	case classNode:
		s := b.newState()
		e := b.newState()
		for _, r := range t.ranges {
			b.edge(s, r, e)
		}
		return s, e
	case concatNode:
		first, last := -1, -1
		for _, sub := range t.subs {
			s, e := b.build(sub)
			if first < 0 {
				first = s
			} else {
				b.eps(last, s)
			}
			last = e
		}
		return first, last
	case altNode:
		s := b.newState()
		e := b.newState()
		for _, sub := range t.subs {
			ss, se := b.build(sub)
			b.eps(s, ss)
			b.eps(se, e)
		}
		return s, e
	case repeatNode:
		s := b.newState()
		e := b.newState()
		ss, se := b.build(t.sub)
		b.eps(s, ss)
		b.eps(se, e)
		if t.infinite {
			b.eps(se, ss)
		}
		if t.min == 0 {
			b.eps(s, e)
		}
		return s, e
	default:
		panic("regex: unknown AST node")
	}
}

// buildNFA compiles several patterns into one NFA whose accepting states
// carry the pattern's rule index.
func buildNFA(asts []node) *nfa {
	b := &nfaBuilder{}
	start := b.newState()
	for rule, ast := range asts {
		s, e := b.build(ast)
		b.eps(start, s)
		b.n.states[e].accept = rule
	}
	b.n.start = start
	return &b.n
}
