package regex

import (
	"math/rand"
	"strings"
	"testing"
)

// refMatch is a direct backtracking interpreter over the AST — an
// independent semantics for the same patterns. It returns the set of
// prefix lengths (in bytes) the pattern can match.
func refMatch(n node, s string) map[int]bool {
	switch t := n.(type) {
	case emptyNode:
		return map[int]bool{0: true}
	case classNode:
		out := map[int]bool{}
		for i, r := range s {
			if i > 0 {
				break
			}
			for _, rng := range t.ranges {
				if r >= rng.Lo && r <= rng.Hi {
					out[len(string(r))] = true
				}
			}
		}
		return out
	case concatNode:
		cur := map[int]bool{0: true}
		for _, sub := range t.subs {
			next := map[int]bool{}
			for p := range cur {
				for q := range refMatch(sub, s[p:]) {
					next[p+q] = true
				}
			}
			cur = next
			if len(cur) == 0 {
				return cur
			}
		}
		return cur
	case altNode:
		out := map[int]bool{}
		for _, sub := range t.subs {
			for p := range refMatch(sub, s) {
				out[p] = true
			}
		}
		return out
	case repeatNode:
		out := map[int]bool{}
		if t.min == 0 {
			out[0] = true
		}
		// Iterative expansion (bounded by |s| since each step consumes
		// at least one byte or loops forever on ε — guard with progress).
		frontier := map[int]bool{0: true}
		for iter := 0; iter <= len(s); iter++ {
			next := map[int]bool{}
			for p := range frontier {
				for q := range refMatch(t.sub, s[p:]) {
					if q == 0 {
						continue // ε-iteration adds nothing new
					}
					if !out[p+q] || iter == 0 {
						next[p+q] = true
					}
					out[p+q] = true
				}
			}
			if !t.infinite {
				// ? — at most one iteration.
				break
			}
			if len(next) == 0 {
				break
			}
			frontier = next
		}
		if t.min == 1 {
			delete(out, 0)
			// out currently holds ≥1-iteration endpoints only, built from
			// progress-making steps; 0 could only appear via min==0.
		}
		return out
	default:
		panic("unknown node")
	}
}

func refLongest(n node, s string) int {
	best := -1
	for p := range refMatch(n, s) {
		if p > best {
			best = p
		}
	}
	return best
}

func TestDFAMatchesReferenceSemantics(t *testing.T) {
	patterns := []string{
		"a", "ab", "a|b", "a*", "a+", "a?",
		"(ab)*", "(a|b)*abb", "a(b|c)d", "a*b*c*",
		"(a|ab)(c|bcd)", "(a+)(b+)", "x(yz)?",
		"[ab]+c", "[^a]b", "a.c",
	}
	inputs := []string{
		"", "a", "b", "ab", "abb", "aabb", "abc", "abcd",
		"aaa", "bbb", "abab", "ababb", "acd", "abd", "xyz", "x",
		"aabbcc", "cab", "bca", "abbcdd",
	}
	for _, pat := range patterns {
		ast, err := parse(pat)
		if err != nil {
			t.Fatalf("parse(%q): %v", pat, err)
		}
		d := MustCompile(pat)
		for _, in := range inputs {
			want := refLongest(ast, in)
			got, _ := d.Match(in)
			if got != want {
				t.Fatalf("pattern %q input %q: DFA %d, reference %d", pat, in, got, want)
			}
		}
	}
}

func TestDFAMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	patterns := []string{"(a|b)*abb", "a(b|c)*d", "(ab|a)(b|bb)", "[ab]*c?"}
	for _, pat := range patterns {
		ast, err := parse(pat)
		if err != nil {
			t.Fatal(err)
		}
		d := MustCompile(pat)
		for i := 0; i < 400; i++ {
			var sb strings.Builder
			for n := rng.Intn(10); n > 0; n-- {
				sb.WriteByte("abcd"[rng.Intn(4)])
			}
			in := sb.String()
			want := refLongest(ast, in)
			got, _ := d.Match(in)
			if got != want {
				t.Fatalf("pattern %q input %q: DFA %d, reference %d", pat, in, got, want)
			}
		}
	}
}

func TestDFADeterminism(t *testing.T) {
	// Every state has non-overlapping edges sorted by range.
	d := MustCompile(`/\*([^*]|\*+[^*/])*\*+/|[a-z]+|[0-9]+`)
	for s := 0; s < d.NumStates(); s++ {
		edges := d.edges[s]
		for i := 1; i < len(edges); i++ {
			if edges[i].rng.Lo <= edges[i-1].rng.Hi {
				t.Fatalf("state %d: overlapping/unsorted edges %v", s, edges)
			}
		}
	}
}
