package regex

import (
	"strings"
	"testing"
	"testing/quick"
)

func match(t *testing.T, pattern, s string) (int, int) {
	t.Helper()
	d, err := Compile(pattern)
	if err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	return d.Match(s)
}

func TestBasicMatching(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           int // matched byte length; -1 = no match
	}{
		{"abc", "abcdef", 3},
		{"abc", "abd", -1},
		{"a*", "aaab", 3},
		{"a*", "b", 0},
		{"a+", "aaab", 3},
		{"a+", "b", -1},
		{"a?b", "ab", 2},
		{"a?b", "b", 1},
		{"a|bc", "bc", 2},
		{"a|bc", "a", 1},
		{"(ab)+", "ababx", 4},
		{"[a-z]+", "hello WORLD", 5},
		{"[^a-z]+", "HELLO world", 6}, // includes the space
		{"[0-9]+", "42x", 2},
		{`\d+`, "123abc", 3},
		{`\w+`, "foo_bar9 baz", 8},
		{`\s+`, " \t\nx", 3},
		{".", "\n", -1},
		{".", "x", 1},
		{`\.`, ".", 1},
		{`\.`, "x", -1},
		{"[-+]?[0-9]+", "-42", 3},
		{"[+-]", "-", 1},
		{"a.c", "abc", 3},
		{"a.c", "a\nc", -1},
		{"(a|b)*abb", "aababb", 6},
		{"x", "", -1},
		{"", "anything", 0},
		{"[]-a]", "]", 1},
		{"日本?語", "日語", 6},
		{"日本?語", "日本語", 9},
	}
	for _, c := range cases {
		got, _ := match(t, c.pattern, c.input)
		if got != c.want {
			t.Errorf("Match(%q, %q) = %d, want %d", c.pattern, c.input, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, p := range []string{"(", ")", "a)", "*a", "+", "?", "[a", "[", `a\`, "[z-a]"} {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%q) should fail", p)
		}
	}
}

func TestRulePriority(t *testing.T) {
	// Keywords before identifiers: same length match goes to the lower
	// rule index.
	d, err := CompileSet([]string{"if", "while", "[a-z]+"})
	if err != nil {
		t.Fatalf("CompileSet: %v", err)
	}
	if n, rule := d.Match("if"); n != 2 || rule != 0 {
		t.Fatalf("Match(if) = (%d,%d), want (2,0)", n, rule)
	}
	if n, rule := d.Match("while"); n != 5 || rule != 1 {
		t.Fatalf("Match(while) = (%d,%d), want (5,1)", n, rule)
	}
	// Longest match beats priority: "iffy" is an identifier.
	if n, rule := d.Match("iffy"); n != 4 || rule != 2 {
		t.Fatalf("Match(iffy) = (%d,%d), want (4,2)", n, rule)
	}
	if n, rule := d.Match("whiles"); n != 6 || rule != 2 {
		t.Fatalf("Match(whiles) = (%d,%d), want (6,2)", n, rule)
	}
}

func TestCCommentPattern(t *testing.T) {
	// The classic C block-comment regex.
	pat := `/\*([^*]|\*+[^*/])*\*+/`
	cases := []struct {
		in   string
		want int
	}{
		{"/**/", 4},
		{"/* hi */", 8},
		{"/* a * b */", 11},
		{"/***/x", 5},
		{"/* unterminated", -1},
		{"/* nested /* */", 15},
	}
	for _, c := range cases {
		if got, _ := match(t, pat, c.in); got != c.want {
			t.Errorf("comment match(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCStringPattern(t *testing.T) {
	pat := `"([^"\\\n]|\\.)*"`
	cases := []struct {
		in   string
		want int
	}{
		{`"hi"`, 4},
		{`"a\"b"`, 6},
		{`"a\\"`, 5},
		{`"unterminated`, -1},
		{"\"no\nnewlines\"", -1},
	}
	for _, c := range cases {
		if got, _ := match(t, pat, c.in); got != c.want {
			t.Errorf("string match(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMinimizationEquivalence(t *testing.T) {
	// Build the same language two ways; minimized DFAs must agree on
	// random inputs. (a|b)*abb
	d1 := MustCompile("(a|b)*abb")
	d2 := MustCompile("(a|b)*abb")
	f := func(bits []bool) bool {
		var sb strings.Builder
		for _, b := range bits {
			if b {
				sb.WriteByte('a')
			} else {
				sb.WriteByte('b')
			}
		}
		s := sb.String()
		n1, _ := d1.Match(s)
		n2, _ := d2.Match(s)
		return n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchAgainstNaive(t *testing.T) {
	// Property: DFA longest-match for a|ab|abc over random abc-strings
	// equals the naive longest prefix in {a, ab, abc}.
	d := MustCompile("a|ab|abc")
	f := func(raw []byte) bool {
		var sb strings.Builder
		for _, b := range raw {
			sb.WriteByte("abc"[int(b)%3])
		}
		s := sb.String()
		want := -1
		for _, p := range []string{"a", "ab", "abc"} {
			if strings.HasPrefix(s, p) && len(p) > want {
				want = len(p)
			}
		}
		got, _ := d.Match(s)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStepAPI(t *testing.T) {
	d := MustCompile("ab*c")
	s := d.Start()
	s = d.Step(s, 'a')
	if s == Dead {
		t.Fatal("dead after a")
	}
	for i := 0; i < 5; i++ {
		s = d.Step(s, 'b')
		if s == Dead {
			t.Fatal("dead in b*")
		}
		if d.Accept(s) >= 0 {
			t.Fatal("should not accept inside b*")
		}
	}
	s = d.Step(s, 'c')
	if s == Dead || d.Accept(s) != 0 {
		t.Fatal("should accept after c")
	}
	if d.Step(s, 'x') != Dead {
		t.Fatal("should be dead after trailing x")
	}
}

func TestMinimizedSmallerOrEqual(t *testing.T) {
	// Redundant alternation should collapse states.
	d := MustCompile("(ab|ab)|ab")
	if d.NumStates() > 3 {
		t.Fatalf("minimized DFA for 'ab' has %d states, want <= 3", d.NumStates())
	}
}

func TestUnicodeClasses(t *testing.T) {
	d := MustCompile("[α-ω]+")
	if n, _ := d.Match("αβγx"); n != 6 {
		t.Fatalf("greek match = %d, want 6", n)
	}
}
