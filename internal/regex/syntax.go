// Package regex implements a small regular-expression engine — parser,
// Thompson NFA construction, subset-construction DFA, and DFA minimization —
// used to compile token definitions for the batch and incremental lexers.
// It supports the operators needed by programming-language token syntax:
// concatenation, alternation (|), repetition (* + ?), grouping, character
// classes ([a-z], [^...]), '.' (any rune except newline), and escapes.
package regex

import (
	"fmt"
	"unicode/utf8"
)

// node is a regex AST node.
type node interface{ isNode() }

type (
	// emptyNode matches the empty string.
	emptyNode struct{}
	// classNode matches one rune drawn from a set of ranges.
	classNode struct{ ranges []RuneRange }
	// concatNode matches a sequence.
	concatNode struct{ subs []node }
	// altNode matches any alternative.
	altNode struct{ subs []node }
	// repeatNode matches sub repeated (min 0 or 1, max 1 or unbounded).
	repeatNode struct {
		sub      node
		min      int  // 0 or 1
		infinite bool // true for * and +
	}
)

func (emptyNode) isNode()  {}
func (classNode) isNode()  {}
func (concatNode) isNode() {}
func (altNode) isNode()    {}
func (repeatNode) isNode() {}

// RuneRange is an inclusive range of runes.
type RuneRange struct {
	Lo, Hi rune
}

// maxRune is the largest valid rune.
const maxRune = utf8.MaxRune

type parser struct {
	src string
	pos int
}

// parse compiles the regex source to an AST.
func parse(src string) (node, error) {
	p := &parser{src: src}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regex %q: unexpected %q at %d", src, p.src[p.pos], p.pos)
	}
	return n, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("regex %q at %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) peek() (rune, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	r, _ := utf8.DecodeRuneInString(p.src[p.pos:])
	return r, true
}

func (p *parser) advance() rune {
	r, sz := utf8.DecodeRuneInString(p.src[p.pos:])
	p.pos += sz
	return r
}

// alternation := concat ('|' concat)*
func (p *parser) alternation() (node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []node{first}
	for {
		r, ok := p.peek()
		if !ok || r != '|' {
			break
		}
		p.advance()
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return altNode{subs: subs}, nil
}

// concat := repeat*
func (p *parser) concat() (node, error) {
	var subs []node
	for {
		r, ok := p.peek()
		if !ok || r == '|' || r == ')' {
			break
		}
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	switch len(subs) {
	case 0:
		return emptyNode{}, nil
	case 1:
		return subs[0], nil
	default:
		return concatNode{subs: subs}, nil
	}
}

// repeat := atom ('*'|'+'|'?')*
func (p *parser) repeat() (node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		r, ok := p.peek()
		if !ok {
			break
		}
		switch r {
		case '*':
			p.advance()
			n = repeatNode{sub: n, min: 0, infinite: true}
		case '+':
			p.advance()
			n = repeatNode{sub: n, min: 1, infinite: true}
		case '?':
			p.advance()
			n = repeatNode{sub: n, min: 0, infinite: false}
		default:
			return n, nil
		}
	}
	return n, nil
}

// atom := '(' alternation ')' | class | '.' | escape | literal
func (p *parser) atom() (node, error) {
	r, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of pattern")
	}
	switch r {
	case '(':
		p.advance()
		n, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return nil, p.errf("missing ')'")
		}
		p.advance()
		return n, nil
	case '[':
		return p.class()
	case '.':
		p.advance()
		// Any rune except newline.
		return classNode{ranges: []RuneRange{{0, '\n' - 1}, {'\n' + 1, maxRune}}}, nil
	case '\\':
		p.advance()
		return p.escape()
	case '*', '+', '?':
		return nil, p.errf("repetition operator %q with nothing to repeat", r)
	case ')':
		return nil, p.errf("unmatched ')'")
	default:
		p.advance()
		return classNode{ranges: []RuneRange{{r, r}}}, nil
	}
}

// escape handles \n \t \r \\ and metacharacter escapes, plus \d \w \s.
func (p *parser) escape() (node, error) {
	r, ok := p.peek()
	if !ok {
		return nil, p.errf("trailing backslash")
	}
	p.advance()
	if rs, ok := escapeClass(r); ok {
		return classNode{ranges: rs}, nil
	}
	return classNode{ranges: []RuneRange{{escapeRune(r), escapeRune(r)}}}, nil
}

func escapeRune(r rune) rune {
	switch r {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case 'f':
		return '\f'
	case 'v':
		return '\v'
	case '0':
		return 0
	default:
		return r
	}
}

func escapeClass(r rune) ([]RuneRange, bool) {
	switch r {
	case 'd':
		return []RuneRange{{'0', '9'}}, true
	case 'w':
		return []RuneRange{{'0', '9'}, {'A', 'Z'}, {'_', '_'}, {'a', 'z'}}, true
	case 's':
		return []RuneRange{{'\t', '\r'}, {' ', ' '}}, true
	default:
		return nil, false
	}
}

// class := '[' '^'? item+ ']' ; item := rune ('-' rune)? | escape
func (p *parser) class() (node, error) {
	p.advance() // '['
	negate := false
	if r, ok := p.peek(); ok && r == '^' {
		negate = true
		p.advance()
	}
	var ranges []RuneRange
	first := true
	for {
		r, ok := p.peek()
		if !ok {
			return nil, p.errf("unterminated character class")
		}
		if r == ']' && !first {
			p.advance()
			break
		}
		first = false
		lo := p.advance()
		if lo == '\\' {
			e, ok := p.peek()
			if !ok {
				return nil, p.errf("trailing backslash in class")
			}
			p.advance()
			if rs, isClass := escapeClass(e); isClass {
				ranges = append(ranges, rs...)
				continue
			}
			lo = escapeRune(e)
		}
		hi := lo
		if r, ok := p.peek(); ok && r == '-' {
			// Peek past '-' to see whether it's a range or a literal '-]'.
			save := p.pos
			p.advance()
			if r2, ok := p.peek(); ok && r2 != ']' {
				hi = p.advance()
				if hi == '\\' {
					e, ok := p.peek()
					if !ok {
						return nil, p.errf("trailing backslash in class")
					}
					p.advance()
					hi = escapeRune(e)
				}
				if hi < lo {
					return nil, p.errf("invalid range %c-%c", lo, hi)
				}
			} else {
				p.pos = save // literal '-' handled on next loop iteration
			}
		}
		ranges = append(ranges, RuneRange{lo, hi})
	}
	ranges = normalizeRanges(ranges)
	if negate {
		ranges = negateRanges(ranges)
	}
	if len(ranges) == 0 {
		return nil, p.errf("empty character class")
	}
	return classNode{ranges: ranges}, nil
}

// normalizeRanges sorts and merges overlapping ranges.
func normalizeRanges(rs []RuneRange) []RuneRange {
	if len(rs) <= 1 {
		return rs
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Lo < rs[j-1].Lo; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// negateRanges complements a normalized range set over [0, maxRune].
func negateRanges(rs []RuneRange) []RuneRange {
	var out []RuneRange
	next := rune(0)
	for _, r := range rs {
		if r.Lo > next {
			out = append(out, RuneRange{next, r.Lo - 1})
		}
		next = r.Hi + 1
	}
	if next <= maxRune {
		out = append(out, RuneRange{next, maxRune})
	}
	return out
}
