package semantics

import (
	"fmt"

	"iglr/internal/dag"
)

// Resolver wraps Resolve with the bookkeeping §4.2 describes: "binding
// information stored in semantic attributes allows the former uses of the
// declaration to be efficiently located". After each pass the resolver
// indexes every ambiguous region by the identifier whose namespace decided
// it, so when a declaration changes, the affected use sites are found
// without a tree search.
type Resolver struct {
	cfg Config
	// useSites maps the deciding identifier to its ambiguous regions
	// (choice nodes) as of the last pass.
	useSites map[string][]*dag.Node
	// decisions records the last outcome per ambiguous region, keyed by
	// the deciding identifier and its occurrence index — stable across
	// reparses that rebuild the region's nodes.
	decisions map[string]Decision
	last      Result
}

// Decision is the recorded outcome for one ambiguous region.
type Decision uint8

// Decision values.
const (
	DecidedNone Decision = iota // unresolved (retained interpretations)
	DecidedDecl
	DecidedStmt
)

// NewResolver creates a resolver for a language configuration.
func NewResolver(cfg Config) *Resolver {
	return &Resolver{
		cfg:       cfg,
		useSites:  map[string][]*dag.Node{},
		decisions: map[string]Decision{},
	}
}

// Resolve runs a pass and refreshes the use-site index. It also reports
// which identifiers' regions changed their interpretation since the
// previous pass — the §4.2 re-interpretation set.
func (r *Resolver) Resolve(root *dag.Node) (Result, []ReinterpretedRegion) {
	prev := r.decisions
	r.useSites = map[string][]*dag.Node{}
	r.decisions = map[string]Decision{}

	res := Resolve(root, r.cfg)
	r.last = res

	var flips []ReinterpretedRegion
	occ := map[string]int{}
	root.Walk(func(n *dag.Node) {
		if n.Kind != dag.KindChoice || n.LeftmostTerm == nil {
			return
		}
		name := n.LeftmostTerm.Text
		r.useSites[name] = append(r.useSites[name], n)
		key := fmt.Sprintf("%s#%d", name, occ[name])
		occ[name]++
		d := r.decisionOf(n)
		r.decisions[key] = d
		if old, ok := prev[key]; ok && old != d {
			flips = append(flips, ReinterpretedRegion{Name: name, Region: n, From: old, To: d})
		}
	})
	return res, flips
}

// ReinterpretedRegion records a region whose interpretation flipped
// between passes (e.g. after a typedef was removed).
type ReinterpretedRegion struct {
	Name     string
	Region   *dag.Node
	From, To Decision
}

// UseSites returns the ambiguous regions whose resolution depends on name,
// as of the last pass.
func (r *Resolver) UseSites(name string) []*dag.Node {
	return r.useSites[name]
}

// Last returns the most recent pass result.
func (r *Resolver) Last() Result { return r.last }

// decisionOf derives the current decision from the filter attributes.
func (r *Resolver) decisionOf(choice *dag.Node) Decision {
	sel := choice.Selected()
	if sel == nil {
		return DecidedNone
	}
	if r.cfg.IsDeclInterpretation(sel) {
		return DecidedDecl
	}
	return DecidedStmt
}
