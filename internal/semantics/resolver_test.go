package semantics_test

import (
	"strings"
	"testing"

	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/semantics"
)

func TestResolverUseSites(t *testing.T) {
	l := cppsub.Lang()
	r := semantics.NewResolver(langs.CStyleSemantics(l))
	d, root := parse(t, l, "typedef int a; a(b); a(c); other(q);")

	res, flips := r.Resolve(root)
	if res.ResolvedDecl != 2 || res.Unresolved != 1 {
		t.Fatalf("result = %+v", res)
	}
	if len(flips) != 0 {
		t.Fatalf("first pass should have no flips, got %d", len(flips))
	}
	if got := len(r.UseSites("a")); got != 2 {
		t.Fatalf("use sites of a = %d, want 2", got)
	}
	if got := len(r.UseSites("other")); got != 1 {
		t.Fatalf("use sites of other = %d, want 1", got)
	}
	if r.UseSites("nope") != nil {
		t.Fatal("unknown name should have no sites")
	}

	// Replace the typedef with an ordinary declaration: both `a` regions
	// flip declaration → call, and the resolver reports exactly them
	// (§4.2: the use sites are located from the recorded bindings, and
	// "the use sites themselves require no action from the parser").
	off := strings.Index(d.Text(), "typedef int a;")
	d.Replace(off, len("typedef int a;"), "int a;")
	root2 := reparse(t, l, d)
	res2, flips2 := r.Resolve(root2)
	if res2.ResolvedStmt != 2 {
		t.Fatalf("after edit: %+v", res2)
	}
	if len(flips2) != 2 {
		t.Fatalf("flips = %d, want 2", len(flips2))
	}
	for _, f := range flips2 {
		if f.Name != "a" || f.From != semantics.DecidedDecl || f.To != semantics.DecidedStmt {
			t.Fatalf("unexpected flip %+v", f)
		}
	}
	if r.Last() != res2 {
		t.Fatal("Last() should track the latest pass")
	}
}

func TestResolverFlipToUnresolved(t *testing.T) {
	l := cppsub.Lang()
	r := semantics.NewResolver(langs.CStyleSemantics(l))
	d, root := parse(t, l, "typedef int a; a(b);")
	r.Resolve(root)

	// Remove the declaration entirely: decl → unresolved.
	off := strings.Index(d.Text(), "typedef int a; ")
	d.Replace(off, len("typedef int a; "), "")
	root2 := reparse(t, l, d)
	_, flips := r.Resolve(root2)
	if len(flips) != 1 || flips[0].To != semantics.DecidedNone {
		t.Fatalf("flips = %+v", flips)
	}
}

func TestResolverStableAcrossNeutralEdits(t *testing.T) {
	// Node retention keeps the choice nodes' identity across unrelated
	// edits, so the resolver sees no spurious flips.
	l := cppsub.Lang()
	r := semantics.NewResolver(langs.CStyleSemantics(l))
	d, root := parse(t, l, "typedef int a; a(b); i = 1;")
	r.Resolve(root)

	off := strings.Index(d.Text(), "i = 1")
	d.Replace(off+4, 1, "7")
	root2 := reparse(t, l, d)
	_, flips := r.Resolve(root2)
	if len(flips) != 0 {
		t.Fatalf("neutral edit caused %d flips", len(flips))
	}
}
