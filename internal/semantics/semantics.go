// Package semantics implements the semantic-disambiguation stage of the
// paper (§4.2, Figure 8): typedef declarations are gathered into binding
// contours per scope, the binding information selects the namespace of the
// leading identifier of each ambiguous region, and boolean filter
// attributes mark the losing interpretations. Filtered interpretations are
// retained — semantic filtering uses non-local information that later edits
// can change, so the decision must be reversible (the filter attributes are
// simply recomputed). Ambiguities whose leading identifier is undeclared
// (program errors, §4.3) remain unresolved indefinitely.
package semantics

import (
	"iglr/internal/dag"
	"iglr/internal/faultinject"
)

// Config adapts the generic resolution engine to a language. All hooks
// operate on parse-dag nodes.
type Config struct {
	// IsScope reports whether n opens a nested scope (e.g. a block).
	IsScope func(n *dag.Node) bool
	// TypedefName returns the type name n introduces, if n is a typedef
	// declaration.
	TypedefName func(n *dag.Node) (string, bool)
	// DeclaredName returns the ordinary (variable/function) name n
	// introduces, if n is a declaration.
	DeclaredName func(n *dag.Node) (string, bool)
	// IsDeclInterpretation reports whether a choice-node child is the
	// "declaration" reading of the ambiguous region.
	IsDeclInterpretation func(n *dag.Node) bool
}

// Scope is one binding contour.
type Scope struct {
	parent   *Scope
	types    map[string]bool
	ordinary map[string]bool
}

// NewScope creates a scope nested in parent (nil for the global scope).
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent, types: map[string]bool{}, ordinary: map[string]bool{}}
}

// BindType records a type name.
func (s *Scope) BindType(name string) { s.types[name] = true }

// BindOrdinary records a variable/function name.
func (s *Scope) BindOrdinary(name string) { s.ordinary[name] = true }

// IsType reports whether name is a type in this scope or an enclosing one.
// Inner ordinary bindings shadow outer type bindings and vice versa.
func (s *Scope) IsType(name string) bool {
	for c := s; c != nil; c = c.parent {
		if c.types[name] {
			return true
		}
		if c.ordinary[name] {
			return false
		}
	}
	return false
}

// IsOrdinary reports whether name is an ordinary binding.
func (s *Scope) IsOrdinary(name string) bool {
	for c := s; c != nil; c = c.parent {
		if c.ordinary[name] {
			return true
		}
		if c.types[name] {
			return false
		}
	}
	return false
}

// Result summarizes one resolution pass.
type Result struct {
	// ResolvedDecl/ResolvedStmt count ambiguous regions resolved to the
	// declaration or statement reading.
	ResolvedDecl, ResolvedStmt int
	// Unresolved counts regions whose leading identifier is undeclared;
	// their interpretations are all retained (§4.3).
	Unresolved int
	// TypeBindings/OrdinaryBindings count contour entries.
	TypeBindings, OrdinaryBindings int
}

// Resolved returns the number of regions resolved either way.
func (r Result) Resolved() int { return r.ResolvedDecl + r.ResolvedStmt }

// Resolve runs the disambiguation passes over the dag in document order:
// binding gathering and filtering are interleaved exactly as C requires
// (declarations bind from their point of declaration onward). Previous
// filter attributes are cleared first, so Resolve is idempotent and
// reversible across edits.
func Resolve(root *dag.Node, cfg Config) Result {
	if faultinject.Enabled() &&
		faultinject.Fire(faultinject.Resolve, "") == faultinject.ActPanic {
		panic(&faultinject.Panic{Point: faultinject.Resolve})
	}
	var res Result
	global := NewScope(nil)
	var walk func(n *dag.Node, sc *Scope)
	walk = func(n *dag.Node, sc *Scope) {
		if n.Kind == dag.KindChoice {
			res.resolveChoice(n, sc, cfg, walk)
			return
		}
		if name, ok := cfg.TypedefName(n); ok {
			sc.BindType(name)
			res.TypeBindings++
		} else if name, ok := cfg.DeclaredName(n); ok {
			sc.BindOrdinary(name)
			res.OrdinaryBindings++
		}
		if cfg.IsScope(n) {
			inner := NewScope(sc)
			for _, k := range n.Kids {
				walk(k, inner)
			}
			return
		}
		for _, k := range n.Kids {
			walk(k, sc)
		}
	}
	walk(root, global)
	return res
}

// resolveChoice decides one ambiguous region.
func (res *Result) resolveChoice(n *dag.Node, sc *Scope, cfg Config, walk func(*dag.Node, *Scope)) {
	// Clear previous decisions: resolution is recomputed from current
	// bindings every pass.
	for _, k := range n.Kids {
		k.Filtered = false
	}
	var declKids, stmtKids []*dag.Node
	for _, k := range n.Kids {
		if cfg.IsDeclInterpretation(k) {
			declKids = append(declKids, k)
		} else {
			stmtKids = append(stmtKids, k)
		}
	}
	lead := n.LeftmostTerm
	if lead == nil || len(declKids) == 0 || len(stmtKids) == 0 {
		// Not a declaration/statement ambiguity; leave for other filters.
		res.Unresolved++
		return
	}
	name := lead.Text
	switch {
	case sc.IsType(name):
		for _, k := range stmtKids {
			k.Filtered = true
		}
		res.ResolvedDecl++
		for _, k := range declKids {
			walk(k, sc)
		}
	case sc.IsOrdinary(name):
		for _, k := range declKids {
			k.Filtered = true
		}
		res.ResolvedStmt++
		for _, k := range stmtKids {
			walk(k, sc)
		}
	default:
		// Undeclared: a program error — every interpretation is retained
		// and no bindings are taken from the region (§4.3).
		res.Unresolved++
	}
}
