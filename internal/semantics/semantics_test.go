package semantics_test

import (
	"testing"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/semantics"
)

func parse(t *testing.T, l *langs.Language, src string) (*document.Document, *dag.Node) {
	t.Helper()
	d := l.NewDocument(src)
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	d.Commit(root)
	return d, root
}

func reparse(t *testing.T, l *langs.Language, d *document.Document) *dag.Node {
	t.Helper()
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("reparse %q: %v", d.Text(), err)
	}
	d.Commit(root)
	return root
}

func TestTypedefSelectsDeclaration(t *testing.T) {
	l := cppsub.Lang()
	_, root := parse(t, l, "typedef int a; a(b); a(c);")
	if !root.Ambiguous() {
		t.Fatal("expected ambiguity before resolution")
	}
	res := semantics.Resolve(root, langs.CStyleSemantics(l))
	if res.ResolvedDecl != 2 || res.ResolvedStmt != 0 || res.Unresolved != 0 {
		t.Fatalf("result = %+v", res)
	}
	if root.Ambiguous() {
		t.Fatal("dag should be fully disambiguated")
	}
	if res.TypeBindings != 1 {
		t.Fatalf("type bindings = %d", res.TypeBindings)
	}
	// The declarations a(b), a(c) bind b and c as ordinary names.
	if res.OrdinaryBindings != 2 {
		t.Fatalf("ordinary bindings = %d", res.OrdinaryBindings)
	}
}

func TestOrdinarySelectsCall(t *testing.T) {
	l := cppsub.Lang()
	_, root := parse(t, l, "int a; a(b);")
	res := semantics.Resolve(root, langs.CStyleSemantics(l))
	if res.ResolvedStmt != 1 || res.ResolvedDecl != 0 {
		t.Fatalf("result = %+v", res)
	}
	if root.Ambiguous() {
		t.Fatal("should be resolved to the call reading")
	}
}

func TestUndeclaredRetainsBothInterpretations(t *testing.T) {
	l := cppsub.Lang()
	_, root := parse(t, l, "a(b);")
	res := semantics.Resolve(root, langs.CStyleSemantics(l))
	if res.Unresolved != 1 || res.Resolved() != 0 {
		t.Fatalf("result = %+v", res)
	}
	if !root.Ambiguous() {
		t.Fatal("program error must retain every interpretation (§4.3)")
	}
}

func TestScopingShadowing(t *testing.T) {
	l := cppsub.Lang()
	// Global typedef a; inner block declares ordinary a, so the inner
	// a(b) is a call while the outer one is a declaration.
	_, root := parse(t, l, "typedef int a; a(x); { int a; a(y); }")
	res := semantics.Resolve(root, langs.CStyleSemantics(l))
	if res.ResolvedDecl != 1 || res.ResolvedStmt != 1 {
		t.Fatalf("result = %+v", res)
	}
	if root.Ambiguous() {
		t.Fatal("both regions should be resolved")
	}
}

func TestInnerScopeInheritsOuterTypedef(t *testing.T) {
	l := cppsub.Lang()
	_, root := parse(t, l, "typedef int T; { T(q); }")
	res := semantics.Resolve(root, langs.CStyleSemantics(l))
	if res.ResolvedDecl != 1 {
		t.Fatalf("result = %+v", res)
	}
}

// TestFigure8SemanticDisambiguation exercises the paper's Figure 8
// scenario end to end: typedef processing, binding propagation, filtering,
// and re-interpretation after the typedef is replaced — all over the same
// incrementally reused dag.
func TestFigure8SemanticDisambiguation(t *testing.T) {
	l := cppsub.Lang()
	cfg := langs.CStyleSemantics(l)
	d, root := parse(t, l, "typedef int a; a(b); a(c);")

	res := semantics.Resolve(root, cfg)
	if res.ResolvedDecl != 2 {
		t.Fatalf("initial: %+v", res)
	}

	// Replace the typedef by an ordinary declaration: the use sites'
	// interpretations flip from declaration to call when the namespace of
	// the leading identifier changes (§4.2).
	d.Replace(0, len("typedef int a;"), "int a;")
	root2 := reparse(t, l, d)
	res2 := semantics.Resolve(root2, cfg)
	if res2.ResolvedStmt != 2 || res2.ResolvedDecl != 0 {
		t.Fatalf("after typedef removal: %+v", res2)
	}

	// Remove the declaration entirely: the regions become unresolvable
	// program errors and retain both interpretations.
	d.Replace(0, len("int a;"), "")
	root3 := reparse(t, l, d)
	res3 := semantics.Resolve(root3, cfg)
	if res3.Unresolved != 2 || res3.Resolved() != 0 {
		t.Fatalf("after removal: %+v", res3)
	}
	if !root3.Ambiguous() {
		t.Fatal("interpretations must persist for erroneous programs")
	}

	// Restore the typedef: the same reused regions resolve as
	// declarations again.
	d.Replace(0, 0, "typedef int a; ")
	root4 := reparse(t, l, d)
	res4 := semantics.Resolve(root4, cfg)
	if res4.ResolvedDecl != 2 {
		t.Fatalf("after restore: %+v", res4)
	}
}

func TestCSubPointerAmbiguity(t *testing.T) {
	l := csub.Lang()
	cfg := langs.CStyleSemantics(l)

	// a * b: declaration when a is a type.
	_, root := parse(t, l, "typedef int a; a * b;")
	res := semantics.Resolve(root, cfg)
	if res.ResolvedDecl != 1 {
		t.Fatalf("typedef case: %+v", res)
	}

	// a * b: multiplication when a is a variable.
	_, root2 := parse(t, l, "int a; a * b;")
	res2 := semantics.Resolve(root2, cfg)
	if res2.ResolvedStmt != 1 {
		t.Fatalf("variable case: %+v", res2)
	}

	// Undeclared: retained.
	_, root3 := parse(t, l, "a * b;")
	res3 := semantics.Resolve(root3, cfg)
	if res3.Unresolved != 1 {
		t.Fatalf("undeclared case: %+v", res3)
	}
	if !root3.Ambiguous() {
		t.Fatal("retained ambiguity expected")
	}
}

func TestCSubCallAmbiguity(t *testing.T) {
	l := csub.Lang()
	cfg := langs.CStyleSemantics(l)
	_, root := parse(t, l, "typedef int a; int c; a(b); c(d);")
	res := semantics.Resolve(root, cfg)
	if res.ResolvedDecl != 1 || res.ResolvedStmt != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestResolveIdempotent(t *testing.T) {
	l := cppsub.Lang()
	cfg := langs.CStyleSemantics(l)
	_, root := parse(t, l, "typedef int a; a(b);")
	r1 := semantics.Resolve(root, cfg)
	r2 := semantics.Resolve(root, cfg)
	if r1 != r2 {
		t.Fatalf("not idempotent: %+v vs %+v", r1, r2)
	}
}

func TestScopeAPI(t *testing.T) {
	g := semantics.NewScope(nil)
	g.BindType("T")
	inner := semantics.NewScope(g)
	inner.BindOrdinary("T") // shadows the type
	if !g.IsType("T") || g.IsOrdinary("T") {
		t.Fatal("global scope wrong")
	}
	if inner.IsType("T") || !inner.IsOrdinary("T") {
		t.Fatal("shadowing wrong")
	}
	if inner.IsType("U") || inner.IsOrdinary("U") {
		t.Fatal("unknown name should be unbound")
	}
}
