// Package sesscodec serializes live editing sessions as versioned,
// checksummed binary artifacts (.ccsess files), extending the langcodec
// artifact approach from languages to documents. A snapshot carries the
// committed document state — text, token stream, and the committed parse
// dag flattened to arena-relative node IDs — plus the edits still pending
// against it, so a daemon can restart, migrate, or evict-and-restore a
// session without reparsing.
//
// Layout:
//
//	magic "CCSS" | uvarint format version | 32-byte language definition
//	hash | uvarint journal tag | flags | committed text |
//	[token stream | node table | root ID]   (committed-tree sessions) |
//	pending edit log |
//	32-byte SHA-256 checksum over every preceding byte
//
// The language hash binds the artifact to the exact language definition it
// was parsed under — restoring against any other language is refused, since
// node symbols, production IDs, and parse states are all meaningless
// outside their table. The trailing checksum is verified before any section
// decoder runs, mirroring langcodec; the format version invalidates
// artifacts written by an incompatible codec. Consumers treat every decode
// failure as "artifact absent" and reparse from source.
//
// The node table is a postorder flattening of the dag: children precede
// parents, shared nodes (ambiguous regions) are emitted once and referenced
// by ID, and terminals reference their token by significant-token index so
// decoding re-ties tree leaves to the token stream by position. Decoding
// rebuilds the dag through the ordinary arena constructors, then replays
// the pending edits through the document's normal Replace path — the
// restored twin goes through the same state transitions as the original,
// which is what makes it byte-identical (the convergence oracle of the
// paper's §5 methodology, applied to persistence).
package sesscodec

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/langs"
	"iglr/internal/lexer"
)

// Magic identifies session snapshot artifact files.
const Magic = "CCSS"

// FormatVersion is bumped whenever the artifact layout changes; older
// snapshots then silently fall back to reparse.
const FormatVersion = 1

// FileExt is the conventional snapshot file extension.
const FileExt = ".ccsess"

// Sentinel decode failures. All of them mean "reparse from source"; they
// are distinguished so callers (daemon metrics, tests) can report why.
var (
	// ErrCorrupt reports a truncated, bit-flipped, or non-artifact file.
	ErrCorrupt = errors.New("sesscodec: corrupt session snapshot")
	// ErrVersion reports a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("sesscodec: snapshot format version mismatch")
	// ErrLanguageMismatch reports a snapshot taken under a different
	// language definition than the one offered for restore.
	ErrLanguageMismatch = errors.New("sesscodec: snapshot language definition mismatch")
)

// State is the persistable extract of a session, as assembled by
// Session.Snapshot: the committed document state plus session-level flags.
type State struct {
	// Lang is the language the session parses under; its hash binds the
	// artifact and its tables validate symbol/production/state ranges.
	Lang *langs.Language
	// Text is the committed text (document.CommittedState).
	Text string
	// Toks is the committed token stream, tiling Text exactly. Ignored
	// when Root is nil.
	Toks []lexer.Token
	// Root is the committed parse root; nil when the session has no
	// committed tree (never parsed, or first parse failed).
	Root *dag.Node
	// Pending are the edits applied since the last commit, oldest first.
	Pending []document.AppliedEdit
	// Det records whether the session runs the deterministic parser.
	Det bool
	// Tag is an opaque sequence tag stored verbatim — the daemon uses it
	// to mark which journal records a snapshot already includes.
	Tag uint64
}

// Node flag bits.
const (
	nodeFiltered     = 1 << 0
	nodeBudgetPruned = 1 << 1
	nodeHasErr       = 1 << 2
)

// Header flag bits.
const (
	flagHasRoot = 1 << 0
	flagDet     = 1 << 1
)

// Token flag bits.
const (
	tokSkip = 1 << 0
	tokOpen = 1 << 1
)

// Encode serializes st as a session snapshot artifact. It fails (rather
// than writing a lying artifact) if the state is internally inconsistent —
// tokens that do not tile the text, or a tree whose leaves do not match the
// token stream; callers treat an encode failure as "session not
// persistable" and keep the session live.
func Encode(st State) ([]byte, error) {
	buf := make([]byte, 0, 1024+len(st.Text)*2)
	buf = append(buf, Magic...)
	buf = binary.AppendUvarint(buf, FormatVersion)
	buf = append(buf, st.Lang.Hash[:]...)
	buf = binary.AppendUvarint(buf, st.Tag)
	var flags byte
	if st.Root != nil {
		flags |= flagHasRoot
	}
	if st.Det {
		flags |= flagDet
	}
	buf = append(buf, flags)
	buf = appendString(buf, st.Text)

	if st.Root != nil {
		var err error
		buf, err = appendTokens(buf, st.Text, st.Toks)
		if err != nil {
			return nil, err
		}
		buf, err = appendNodes(buf, st.Root, st.Toks)
		if err != nil {
			return nil, err
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(st.Pending)))
	for _, e := range st.Pending {
		buf = binary.AppendUvarint(buf, uint64(e.Offset))
		buf = appendString(buf, e.Removed)
		buf = appendString(buf, e.Inserted)
	}

	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...), nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendTokens writes the committed token stream, verifying it tiles the
// committed text exactly (offsets are implicit — cumulative — in the
// artifact).
func appendTokens(buf []byte, text string, toks []lexer.Token) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(toks)))
	off := 0
	for i, t := range toks {
		if t.Offset != off {
			return nil, fmt.Errorf("sesscodec: token %d at offset %d, expected %d (stream does not tile text)", i, t.Offset, off)
		}
		off += len(t.Text)
		buf = binary.AppendVarint(buf, int64(t.Type))
		buf = binary.AppendUvarint(buf, uint64(len(t.Text)))
		buf = binary.AppendUvarint(buf, uint64(t.Lookahead))
		var f byte
		if t.Skip {
			f |= tokSkip
		}
		if t.Open {
			f |= tokOpen
		}
		buf = append(buf, f)
	}
	if off != len(text) {
		return nil, fmt.Errorf("sesscodec: token stream covers %d of %d text bytes", off, len(text))
	}
	return buf, nil
}

// appendNodes flattens the dag rooted at root in postorder (children before
// parents, shared nodes once) and writes the node table. Terminals are
// written as significant-token indices; their identity with the stream's
// leaves is validated against toks.
func appendNodes(buf []byte, root *dag.Node, toks []lexer.Token) ([]byte, error) {
	// The committed tree's leaves, left to right, correspond 1:1 to the
	// significant (non-skip) tokens of the committed stream — alternative
	// interpretations at choice nodes share their terminals, so the
	// first-interpretation walk visits every leaf exactly once.
	leaves := root.Terminals(nil)
	sigIdx := make(map[*dag.Node]uint32, len(leaves))
	nSig := 0
	for _, t := range toks {
		if t.Skip {
			continue
		}
		if nSig == len(leaves) {
			return nil, fmt.Errorf("sesscodec: committed tree has %d leaves but stream has more significant tokens", len(leaves))
		}
		l := leaves[nSig]
		if l.Text != t.Text {
			return nil, fmt.Errorf("sesscodec: leaf %d text %q does not match token %q", nSig, l.Text, t.Text)
		}
		sigIdx[l] = uint32(nSig)
		nSig++
	}
	if nSig != len(leaves) {
		return nil, fmt.Errorf("sesscodec: committed tree has %d leaves but stream has %d significant tokens", len(leaves), nSig)
	}

	// Iterative postorder with deduplication: shared subtrees (ambiguous
	// regions reference their alternatives' common structure) are emitted
	// on first completion and skipped thereafter, so every kid reference
	// points backwards in the table.
	ids := make(map[*dag.Node]uint32, len(leaves)*2)
	var body []byte
	var emitted uint32
	type frame struct {
		n    *dag.Node
		next int
	}
	stack := []frame{{n: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if _, done := ids[f.n]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		if f.n.Kind != dag.KindTerminal && f.next < len(f.n.Kids) {
			k := f.n.Kids[f.next]
			f.next++
			if _, done := ids[k]; !done {
				stack = append(stack, frame{n: k})
			}
			continue
		}
		var err error
		body, err = appendNode(body, f.n, ids, sigIdx)
		if err != nil {
			return nil, err
		}
		ids[f.n] = emitted
		emitted++
		stack = stack[:len(stack)-1]
	}

	buf = binary.AppendUvarint(buf, uint64(emitted))
	buf = append(buf, body...)
	return binary.AppendUvarint(buf, uint64(ids[root])), nil
}

func appendNode(buf []byte, n *dag.Node, ids map[*dag.Node]uint32, sigIdx map[*dag.Node]uint32) ([]byte, error) {
	buf = append(buf, byte(n.Kind))
	buf = binary.AppendVarint(buf, int64(n.Sym))
	var f byte
	if n.Filtered {
		f |= nodeFiltered
	}
	if n.BudgetPruned {
		f |= nodeBudgetPruned
	}
	if n.Err != nil {
		f |= nodeHasErr
	}
	buf = append(buf, f)
	buf = binary.AppendVarint(buf, int64(n.State))

	if n.Kind == dag.KindTerminal {
		si, ok := sigIdx[n]
		if !ok {
			return nil, fmt.Errorf("sesscodec: terminal %q in dag is not a leaf of the committed stream", n.Text)
		}
		return binary.AppendUvarint(buf, uint64(si)), nil
	}

	if n.Kind == dag.KindProduction {
		buf = binary.AppendVarint(buf, int64(n.Prod))
	}
	buf = binary.AppendUvarint(buf, uint64(len(n.Kids)))
	for _, k := range n.Kids {
		id, ok := ids[k]
		if !ok {
			return nil, fmt.Errorf("sesscodec: kid emitted after parent (cycle in dag?)")
		}
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	if n.Err != nil {
		buf = binary.AppendUvarint(buf, uint64(len(n.Err.Expected)))
		for _, e := range n.Err.Expected {
			buf = appendString(buf, e)
		}
		buf = binary.AppendVarint(buf, int64(n.Err.Region))
	}
	return buf, nil
}

// Restored is the result of decoding a snapshot: a document in exactly the
// state the snapshotted session's document was in (committed tree installed,
// pending edits re-applied), plus the session-level extras.
type Restored struct {
	Doc *document.Document
	Det bool
	Tag uint64
}

// reader is a bounds-checked cursor over the artifact payload. Every read
// past the end (or malformed varint) latches the bad flag; callers check it
// once per section instead of per field, and no read ever panics.
type reader struct {
	data []byte
	bad  bool
}

func (r *reader) fail() {
	r.bad = true
	r.data = nil
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

// count reads a uvarint bounded by the remaining payload size — a safe
// allocation bound for any sequence whose elements occupy at least one
// byte each, which defeats length-bomb inputs.
func (r *reader) count() int {
	v := r.uvarint()
	if v > uint64(len(r.data)) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *reader) take(n int) []byte {
	if n < 0 || n > len(r.data) {
		r.fail()
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *reader) str() string { return string(r.take(r.count())) }

func (r *reader) byteVal() byte {
	if len(r.data) == 0 {
		r.fail()
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

// Decode reconstructs a session document from an artifact produced by
// Encode, restoring it against l — which must be the same language
// definition (by content hash) the snapshot was taken under. The checksum
// is verified before anything else, so no section decoder ever sees
// corrupted bytes; the decoder nevertheless validates every structural
// invariant (token tiling, node references, symbol/production/state
// ranges, leaf↔token identity, pending-edit applicability), so even a
// correctly-checksummed adversarial artifact yields ErrCorrupt, never a
// panic or a wrong tree.
func Decode(data []byte, l *langs.Language) (*Restored, error) {
	if len(data) < len(Magic)+sha256.Size+1 {
		return nil, ErrCorrupt
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, ErrCorrupt
	}
	if string(body[:len(Magic)]) != Magic {
		return nil, ErrCorrupt
	}
	r := &reader{data: body[len(Magic):]}
	if v := r.uvarint(); r.bad {
		return nil, ErrCorrupt
	} else if v != FormatVersion {
		return nil, ErrVersion
	}
	hash := r.take(sha256.Size)
	if r.bad {
		return nil, ErrCorrupt
	}
	if string(hash) != string(l.Hash[:]) {
		return nil, ErrLanguageMismatch
	}
	tag := r.uvarint()
	flags := r.byteVal()
	text := r.str()
	if r.bad || flags&^(flagHasRoot|flagDet) != 0 {
		return nil, ErrCorrupt
	}

	var doc *document.Document
	if flags&flagHasRoot != 0 {
		toks, err := decodeTokens(r, text, l)
		if err != nil {
			return nil, err
		}
		arena := dag.NewArena()
		nodes, root, err := decodeNodes(r, arena, toks, l)
		if err != nil {
			return nil, err
		}
		doc = document.Restore(l.Spec, l.Grammar, l.Map, arena, text, toks, nodes)
		doc.Commit(root)
	} else {
		// No committed tree: the snapshot is text + pending edits. A
		// fresh document (full lex) is the committed state.
		doc = l.NewDocument(text)
	}

	nPending := r.count()
	if r.bad {
		return nil, ErrCorrupt
	}
	for i := 0; i < nPending; i++ {
		off := r.uvarint()
		removed := r.str()
		inserted := r.str()
		if r.bad || off > uint64(doc.Len()) {
			return nil, ErrCorrupt
		}
		if err := doc.ReplayEdit(document.AppliedEdit{Offset: int(off), Removed: removed, Inserted: inserted}); err != nil {
			return nil, fmt.Errorf("%w: pending edit %d: %v", ErrCorrupt, i, err)
		}
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.data))
	}
	return &Restored{Doc: doc, Det: flags&flagDet != 0, Tag: tag}, nil
}

// decodeTokens rebuilds the committed token stream over text, validating
// that the tokens tile the text exactly and reference valid lexer rules.
func decodeTokens(r *reader, text string, l *langs.Language) ([]lexer.Token, error) {
	n := r.count()
	if r.bad {
		return nil, ErrCorrupt
	}
	toks := make([]lexer.Token, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		typ := r.varint()
		tl := r.uvarint()
		la := r.uvarint()
		f := r.byteVal()
		if r.bad ||
			(typ != lexer.ErrorType && (typ < 0 || typ >= int64(l.Spec.NumRules()))) ||
			tl > uint64(len(text)-off) ||
			la > uint64(len(text)) ||
			f&^(tokSkip|tokOpen) != 0 {
			return nil, fmt.Errorf("%w: token %d malformed", ErrCorrupt, i)
		}
		toks = append(toks, lexer.Token{
			Type:      int(typ),
			Offset:    off,
			Text:      text[off : off+int(tl)],
			Lookahead: int(la),
			Skip:      f&tokSkip != 0,
			Open:      f&tokOpen != 0,
		})
		off += int(tl)
	}
	if off != len(text) {
		return nil, fmt.Errorf("%w: token stream covers %d of %d text bytes", ErrCorrupt, off, len(text))
	}
	return toks, nil
}

// decodeNodes rebuilds the dag from the node table through the arena
// constructors, returning the per-token terminal array (parallel to toks,
// nil at skip tokens) and the root. Every reference is validated: kids
// point backwards, terminals claim each significant token exactly once,
// symbols/productions/states are in range for l.
func decodeNodes(r *reader, arena *dag.Arena, toks []lexer.Token, l *langs.Language) ([]*dag.Node, *dag.Node, error) {
	fail := func(i int, what string) ([]*dag.Node, *dag.Node, error) {
		return nil, nil, fmt.Errorf("%w: node %d: %s", ErrCorrupt, i, what)
	}
	// Significant-token index → token index.
	sigTok := make([]int, 0, len(toks))
	for ti, t := range toks {
		if !t.Skip {
			sigTok = append(sigTok, ti)
		}
	}
	nodesArr := make([]*dag.Node, len(toks))

	count := r.count()
	if r.bad {
		return nil, nil, ErrCorrupt
	}
	table := make([]*dag.Node, 0, count)
	nSyms := int64(l.Grammar.NumSymbols())
	nProds := int64(l.Grammar.NumProductions())
	nStates := int64(l.Table.NumStates())
	for i := 0; i < count; i++ {
		kind := dag.Kind(r.byteVal())
		sym := r.varint()
		f := r.byteVal()
		state := r.varint()
		if r.bad || kind > dag.KindError || sym < 0 || sym >= nSyms ||
			f&^(nodeFiltered|nodeBudgetPruned|nodeHasErr) != 0 ||
			(state != dag.NoState && state != dag.MultiState && (state < 0 || state >= nStates)) {
			return fail(i, "malformed header")
		}
		var n *dag.Node
		if kind == dag.KindTerminal {
			si := r.uvarint()
			if r.bad || si >= uint64(len(sigTok)) {
				return fail(i, "significant-token index out of range")
			}
			ti := sigTok[si]
			if nodesArr[ti] != nil {
				return fail(i, "token claimed by two terminals")
			}
			if f&nodeHasErr != 0 {
				return fail(i, "error detail on terminal")
			}
			// The terminal symbol is a pure function of its token (the
			// document's newTerminal mapping); a stored symbol that
			// disagrees is corruption, not data.
			want := grammar.ErrorSym
			if toks[ti].Type != lexer.ErrorType {
				want = l.Map(toks[ti].Type, toks[ti].Text)
			}
			if grammar.Sym(sym) != want {
				return fail(i, "terminal symbol does not match token")
			}
			n = arena.Terminal(grammar.Sym(sym), toks[ti].Text)
			nodesArr[ti] = n
		} else {
			prod := int64(-1)
			if kind == dag.KindProduction {
				prod = r.varint()
				if r.bad || prod < 0 || prod >= nProds || l.Grammar.Production(int(prod)).LHS != grammar.Sym(sym) {
					return fail(i, "production out of range")
				}
			}
			nKids := r.count()
			if r.bad {
				return fail(i, "kid count")
			}
			kids := make([]*dag.Node, nKids)
			for k := 0; k < nKids; k++ {
				id := r.uvarint()
				if r.bad || id >= uint64(len(table)) {
					return fail(i, "kid reference not yet emitted")
				}
				kids[k] = table[id]
			}
			var det *dag.ErrorDetail
			if f&nodeHasErr != 0 {
				if kind != dag.KindError {
					return fail(i, "error detail on non-error node")
				}
				nExp := r.count()
				if r.bad {
					return fail(i, "expected-set count")
				}
				exp := make([]string, nExp)
				for e := 0; e < nExp; e++ {
					exp[e] = r.str()
				}
				region := r.varint()
				if r.bad || (region != int64(grammar.InvalidSym) && (region < 0 || region >= nSyms)) {
					return fail(i, "error region symbol")
				}
				det = &dag.ErrorDetail{Expected: exp, Region: grammar.Sym(region)}
			}
			switch kind {
			case dag.KindProduction:
				n = arena.Production(grammar.Sym(sym), int(prod), int(state), kids)
			case dag.KindChoice:
				n = arena.Choice(grammar.Sym(sym), kids...)
			case dag.KindSeq:
				n = arena.Seq(grammar.Sym(sym), kids)
			case dag.KindError:
				n = arena.Error(kids, det)
				n.Sym = grammar.Sym(sym)
			}
		}
		// The constructors compute cover bookkeeping and default states;
		// the recorded state (and flags) override — they are part of the
		// committed tree's identity (state-matching, §3.2).
		n.State = int32(state)
		n.Filtered = f&nodeFiltered != 0
		n.BudgetPruned = f&nodeBudgetPruned != 0
		table = append(table, n)
	}
	rootID := r.uvarint()
	if r.bad || rootID >= uint64(len(table)) {
		return nil, nil, fmt.Errorf("%w: root reference", ErrCorrupt)
	}
	root := table[rootID]
	// Every significant token must be a leaf of the restored tree —
	// document invariant: nodes[i] non-nil exactly at non-skip tokens.
	for _, ti := range sigTok {
		if nodesArr[ti] == nil {
			return nil, nil, fmt.Errorf("%w: significant token %d has no terminal node", ErrCorrupt, ti)
		}
	}
	// And the tree's leaves, left to right, must be exactly those
	// terminals in stream order — a correctly-checksummed artifact whose
	// structure disagrees with its own token stream is rejected, never
	// restored as a wrong document.
	if err := validateLeaves(root, nodesArr, sigTok, count); err != nil {
		return nil, nil, err
	}
	return nodesArr, root, nil
}

// validateLeaves checks that root's terminal yield (first unfiltered
// interpretation at choices — the same policy Encode serialized under)
// visits the stream's significant terminals exactly, in order. The walk is
// iterative with a visit budget: a genuine tree visits at most one node
// per table entry, so an artifact whose sharing structure would make the
// walk superlinear (an adversarial blow-up, impossible to produce by
// Encode) is rejected rather than traversed.
func validateLeaves(root *dag.Node, nodesArr []*dag.Node, sigTok []int, tableLen int) error {
	budget := 4*tableLen + 8
	next := 0
	stack := []*dag.Node{root}
	for len(stack) > 0 {
		budget--
		if budget < 0 {
			return fmt.Errorf("%w: leaf walk exceeds node table (adversarial sharing)", ErrCorrupt)
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch n.Kind {
		case dag.KindTerminal:
			if next >= len(sigTok) || nodesArr[sigTok[next]] != n {
				return fmt.Errorf("%w: tree leaves out of stream order", ErrCorrupt)
			}
			next++
		case dag.KindChoice:
			pick := -1
			for i, k := range n.Kids {
				if !k.Filtered {
					pick = i
					break
				}
			}
			if pick < 0 && len(n.Kids) > 0 {
				pick = 0
			}
			if pick >= 0 {
				stack = append(stack, n.Kids[pick])
			}
		default:
			for i := len(n.Kids) - 1; i >= 0; i-- {
				stack = append(stack, n.Kids[i])
			}
		}
	}
	if next != len(sigTok) {
		return fmt.Errorf("%w: tree covers %d of %d significant tokens", ErrCorrupt, next, len(sigTok))
	}
	return nil
}
