package sesscodec_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"strings"
	"testing"

	incremental "iglr"
	"iglr/internal/dag"
	"iglr/internal/langs"
	"iglr/internal/langs/csub"
	"iglr/internal/langs/expr"
	"iglr/internal/langs/mod2sub"
	"iglr/internal/sesscodec"
)

// artifact builds a .ccsess via the public Session API: parse src, apply
// the edits (reparsing unless pending is set, which leaves them pending),
// snapshot with tag.
func artifact(t *testing.T, lang *incremental.Language, src string, edits [][3]string, pending bool, tolerant bool, tag uint64) []byte {
	t.Helper()
	s := incremental.NewSession(lang, src)
	var opts []incremental.ParseOption
	if tolerant {
		opts = append(opts, incremental.Tolerant())
	}
	if out := s.Do(nil, opts...); out.Err != nil {
		t.Fatalf("seed parse: %v", out.Err)
	}
	for _, e := range edits {
		off := strings.Index(s.Text(), e[0])
		if off < 0 {
			t.Fatalf("edit anchor %q not in text", e[0])
		}
		s.Edit(off, len(e[1]), e[2])
		if !pending {
			s.Do(nil, opts...)
		}
	}
	var buf bytes.Buffer
	if err := s.SnapshotTagged(&buf, tag); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// reencode re-serializes a restored document, which must reproduce the
// artifact it was decoded from — the codec has one canonical encoding per
// session state.
func reencode(t *testing.T, res *sesscodec.Restored, def *langs.Language) []byte {
	t.Helper()
	text, toks, pending, err := res.Doc.CommittedState()
	if err != nil {
		t.Fatalf("committed state: %v", err)
	}
	data, err := sesscodec.Encode(sesscodec.State{
		Lang: def, Text: text, Toks: toks, Root: res.Doc.Root(),
		Pending: pending, Det: res.Det, Tag: res.Tag,
	})
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	return data
}

func exprPub() (*incremental.Language, *langs.Language) { return incremental.ExprLanguage(), expr.Lang() }

func TestRoundTripCanonical(t *testing.T) {
	cases := []struct {
		name     string
		pub      *incremental.Language
		def      *langs.Language
		src      string
		edits    [][3]string
		pending  bool
		tolerant bool
	}{
		{name: "expr-clean", src: "a + b * (c - 42) / d"},
		{name: "expr-edited", src: "a + b * c", edits: [][3]string{{"b", "b", "bb"}, {"c", "c", "(c - 42)"}}},
		{name: "expr-pending", src: "a + b * c", edits: [][3]string{{"b", "b", "zz"}}, pending: true},
		{
			name: "csub-error-nodes", pub: incremental.CSubset(), def: csub.Lang(),
			src:      "typedef int T; T x; x = f(x, 1) + 2; return x + 1;",
			edits:    [][3]string{{"x = f", "", "@#! "}},
			tolerant: true,
		},
		{
			name: "mod2-det", pub: incremental.Modula2Subset(), def: mod2sub.Lang(),
			src: "MODULE M; VAR x: INTEGER; BEGIN x := 1 END M.",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.pub == nil {
				tc.pub, tc.def = exprPub()
			}
			data := artifact(t, tc.pub, tc.src, tc.edits, tc.pending, tc.tolerant, 7)
			res, err := sesscodec.Decode(data, tc.def)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if res.Tag != 7 {
				t.Fatalf("tag: got %d", res.Tag)
			}
			if got := reencode(t, res, tc.def); !bytes.Equal(got, data) {
				t.Fatalf("not canonical: re-encode %d bytes vs original %d", len(got), len(data))
			}
		})
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	pub, def := exprPub()
	data := artifact(t, pub, "a + b * (c - 42) / d", nil, false, false, 0)
	for n := 0; n < len(data); n += 1 + len(data)/31 {
		if _, err := sesscodec.Decode(data[:n], def); !errors.Is(err, sesscodec.ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: want ErrCorrupt, got %v", n, err)
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	pub, def := exprPub()
	data := artifact(t, pub, "a + b * c", nil, false, false, 0)
	for _, pos := range []int{0, 4, len(data) / 3, len(data) / 2, len(data) - 1} {
		flipped := append([]byte(nil), data...)
		flipped[pos] ^= 0x40
		if _, err := sesscodec.Decode(flipped, def); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	pub, def := exprPub()
	data := artifact(t, pub, "a + b", nil, false, false, 0)
	if _, err := sesscodec.Decode(append(append([]byte(nil), data...), 0xEE), def); !errors.Is(err, sesscodec.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for trailing garbage, got %v", err)
	}
}

// resign recomputes the checksum trailer after a deliberate body mutation,
// so the decoder's structural validation — not the checksum — must catch it.
func resign(data []byte) []byte {
	body := append([]byte(nil), data[:len(data)-sha256.Size]...)
	sum := sha256.Sum256(body)
	return append(body, sum[:]...)
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	pub, def := exprPub()
	data := artifact(t, pub, "a + b", nil, false, false, 0)
	skewed := append([]byte(nil), data...)
	skewed[len(sesscodec.Magic)] = sesscodec.FormatVersion + 1 // single-byte uvarint
	if _, err := sesscodec.Decode(resign(skewed), def); !errors.Is(err, sesscodec.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestDecodeRejectsForeignLanguage(t *testing.T) {
	pub, _ := exprPub()
	data := artifact(t, pub, "a + b", nil, false, false, 0)
	if _, err := sesscodec.Decode(data, csub.Lang()); !errors.Is(err, sesscodec.ErrLanguageMismatch) {
		t.Fatalf("want ErrLanguageMismatch, got %v", err)
	}
}

// TestDecodeRejectsResignedCorruption: even an artifact with a valid
// checksum must not get a malformed body past the structural validators —
// the daemon treats artifacts as untrusted input.
func TestDecodeRejectsResignedCorruption(t *testing.T) {
	pub, def := exprPub()
	data := artifact(t, pub, "a + b * (c - 42) / d", nil, false, false, 0)
	body := len(data) - sha256.Size
	rejected := 0
	for pos := len(sesscodec.Magic) + 1 + sha256.Size; pos < body; pos++ {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[pos] ^= flip
			res, err := sesscodec.Decode(resign(mut), def)
			if err != nil {
				rejected++
				continue
			}
			// A mutation the decoder accepts must still restore a
			// structurally coherent document (never a panic, never an
			// inconsistent tree): re-encoding it must succeed.
			reencode(t, res, def)
		}
	}
	if rejected == 0 {
		t.Fatal("no resigned mutation was rejected — validators are not running")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	recs := []sesscodec.JournalRecord{
		{Seq: 1, Edits: []sesscodec.JournalEdit{{Offset: 0, Remove: 0, Insert: "x"}}},
		{Seq: 2, Edits: []sesscodec.JournalEdit{{Offset: 3, Remove: 2, Insert: ""}, {Offset: 1, Remove: 0, Insert: "yy"}}},
		{Seq: 3, Edits: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = sesscodec.AppendJournalRecord(buf, r)
	}
	got, torn := sesscodec.DecodeJournal(buf)
	if torn {
		t.Fatal("intact journal reported torn")
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Seq != recs[i].Seq || len(got[i].Edits) != len(recs[i].Edits) {
			t.Fatalf("record %d diverged: %+v vs %+v", i, got[i], recs[i])
		}
		for j := range recs[i].Edits {
			if got[i].Edits[j] != recs[i].Edits[j] {
				t.Fatalf("record %d edit %d diverged", i, j)
			}
		}
	}
}

func TestJournalTornTail(t *testing.T) {
	var buf []byte
	buf = sesscodec.AppendJournalRecord(buf, sesscodec.JournalRecord{Seq: 1, Edits: []sesscodec.JournalEdit{{Insert: "hello"}}})
	whole := len(buf)
	buf = sesscodec.AppendJournalRecord(buf, sesscodec.JournalRecord{Seq: 2, Edits: []sesscodec.JournalEdit{{Insert: "world"}}})
	for cut := whole + 1; cut < len(buf); cut++ {
		recs, torn := sesscodec.DecodeJournal(buf[:cut])
		if !torn {
			t.Fatalf("cut at %d not reported torn", cut)
		}
		if len(recs) != 1 || recs[0].Seq != 1 {
			t.Fatalf("cut at %d lost the intact prefix: %+v", cut, recs)
		}
	}
}

func TestJournalBitFlip(t *testing.T) {
	var buf []byte
	buf = sesscodec.AppendJournalRecord(buf, sesscodec.JournalRecord{Seq: 9, Edits: []sesscodec.JournalEdit{{Offset: 5, Remove: 1, Insert: "zz"}}})
	for pos := range buf {
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 0x10
		recs, torn := sesscodec.DecodeJournal(mut)
		if !torn && len(recs) == 1 {
			r := recs[0]
			if r.Seq != 9 || len(r.Edits) != 1 || r.Edits[0] != (sesscodec.JournalEdit{Offset: 5, Remove: 1, Insert: "zz"}) {
				t.Fatalf("flip at %d silently altered the record: %+v", pos, r)
			}
		}
	}
}

func TestJournalEmpty(t *testing.T) {
	if recs, torn := sesscodec.DecodeJournal(nil); torn || recs != nil {
		t.Fatalf("empty journal: %v %v", recs, torn)
	}
}

// FuzzSessCodecRoundTrip throws arbitrary bytes at the snapshot decoder:
// it must never panic, and anything it accepts must re-encode canonically
// and restore to a coherent document.
func FuzzSessCodecRoundTrip(f *testing.F) {
	exprPubL, exprDef := exprPub()
	tt := &testing.T{}
	f.Add(artifact(tt, exprPubL, "a + b * (c - 42) / d", nil, false, false, 0))
	f.Add(artifact(tt, exprPubL, "a + b * c", [][3]string{{"b", "b", "zz"}}, true, false, 3))
	f.Add(artifact(tt, incremental.CSubset(), "typedef int T; T x; x = f(x, 1) + 2; return x + 1;",
		[][3]string{{"x = f", "", "@#! "}}, false, true, 1))
	if tt.Failed() {
		f.Fatal("seed construction failed")
	}
	defs := []*langs.Language{exprDef, csub.Lang()}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, def := range defs {
			res, err := sesscodec.Decode(data, def)
			if err != nil {
				continue
			}
			// Accepted: the restored document must be coherent enough to
			// re-encode, and the re-encoding must round-trip to the same
			// text, tree, and pending set.
			enc := reencode(t, res, def)
			res2, err := sesscodec.Decode(enc, def)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if res2.Doc.Text() != res.Doc.Text() {
				t.Fatal("re-decode changed text")
			}
			r1, r2 := res.Doc.Root(), res2.Doc.Root()
			if (r1 == nil) != (r2 == nil) {
				t.Fatal("re-decode changed root presence")
			}
			if r1 != nil && dag.Format(def.Grammar, r1) != dag.Format(def.Grammar, r2) {
				t.Fatal("re-decode changed tree")
			}
		}
	})
}

// FuzzJournalDecode: arbitrary bytes must never panic the journal reader,
// and whatever prefix it accepts must re-encode to a byte prefix of a
// re-framed journal.
func FuzzJournalDecode(f *testing.F) {
	var seed []byte
	seed = sesscodec.AppendJournalRecord(seed, sesscodec.JournalRecord{Seq: 1, Edits: []sesscodec.JournalEdit{{Offset: 2, Remove: 1, Insert: "ab"}}})
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := sesscodec.DecodeJournal(data)
		var out []byte
		for _, r := range recs {
			out = sesscodec.AppendJournalRecord(out, r)
		}
		if len(out) > len(data) || !bytes.Equal(out, data[:len(out)]) {
			t.Fatal("accepted records do not re-frame to the input prefix")
		}
	})
}
