package sesscodec

import (
	"encoding/binary"
	"hash/crc32"
)

// Write-ahead journal framing. Between snapshots the daemon appends one
// record per accepted edit batch:
//
//	4-byte LE payload length | 4-byte LE CRC-32C of payload | payload
//	payload: uvarint seq | uvarint edit count |
//	         per edit: uvarint offset, uvarint remove, inserted string
//
// Records carry a monotonically increasing sequence number; a snapshot
// stores the sequence of the last record it includes (State.Tag), so
// replay after a crash skips records the snapshot already covers. That
// makes journal truncation after a snapshot an optimization, not a
// correctness requirement — the crash window between snapshot rename and
// journal truncate double-applies nothing.
//
// The journal is append-only and read strictly in order: DecodeJournal
// stops at the first record that is short, fails its checksum, or is
// malformed, and reports the tail as torn. A torn tail is the expected
// signature of a crash mid-append; everything before it is intact (each
// record was fsynced before the edit it records was applied).

// JournalEdit is one text edit as journaled: remove `Remove` bytes at
// `Offset`, insert `Insert`. The removed text is not recorded — replay
// recovers it from the document, exactly as the live edit did.
type JournalEdit struct {
	Offset int
	Remove int
	Insert string
}

// JournalRecord is one journaled edit batch.
type JournalRecord struct {
	Seq   uint64
	Edits []JournalEdit
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxJournalPayload bounds a single record; a length prefix beyond it is
// treated as corruption rather than attempted as an allocation.
const maxJournalPayload = 1 << 28

// AppendJournalRecord appends the framed encoding of rec to buf.
func AppendJournalRecord(buf []byte, rec JournalRecord) []byte {
	payload := binary.AppendUvarint(nil, rec.Seq)
	payload = binary.AppendUvarint(payload, uint64(len(rec.Edits)))
	for _, e := range rec.Edits {
		payload = binary.AppendUvarint(payload, uint64(e.Offset))
		payload = binary.AppendUvarint(payload, uint64(e.Remove))
		payload = appendString(payload, e.Insert)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeJournal parses every intact record of a journal, in order. It
// stops at the first short, checksum-failing, or malformed record and
// reports torn=true for that tail; the records before it are valid. An
// empty journal yields (nil, false).
func DecodeJournal(data []byte) (recs []JournalRecord, torn bool) {
	for len(data) > 0 {
		if len(data) < 8 {
			return recs, true
		}
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n > maxJournalPayload || uint32(len(data)-8) < n {
			return recs, true
		}
		payload := data[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, true
		}
		rec, ok := decodeJournalPayload(payload)
		if !ok {
			return recs, true
		}
		recs = append(recs, rec)
		data = data[8+n:]
	}
	return recs, false
}

func decodeJournalPayload(payload []byte) (JournalRecord, bool) {
	r := &reader{data: payload}
	var rec JournalRecord
	rec.Seq = r.uvarint()
	n := r.count()
	if r.bad {
		return rec, false
	}
	rec.Edits = make([]JournalEdit, 0, n)
	for i := 0; i < n; i++ {
		off := r.uvarint()
		rem := r.uvarint()
		ins := r.str()
		// Offsets and removal counts are bounded by any plausible text
		// size; reject values that cannot fit an int so replay arithmetic
		// never overflows.
		if r.bad || off > 1<<48 || rem > 1<<48 {
			return rec, false
		}
		rec.Edits = append(rec.Edits, JournalEdit{Offset: int(off), Remove: int(rem), Insert: ins})
	}
	if len(r.data) != 0 {
		return rec, false
	}
	return rec, true
}
