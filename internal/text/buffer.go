// Package text provides an editable text buffer — a gap buffer with a
// version-stamped edit log — serving as the textual half of the
// self-versioning document model the incremental analyses are built on
// (Wagner & Graham, CompCon 97 [26]).
//
// The buffer is optimized for the two lives a document actually leads.
// Cold (batch) inputs are adopted without copying: NewBuffer aliases the
// source string — possibly an mmap'd file (see MapFile) — and every read
// (String, Slice, Bytes, ByteAt) is served zero-copy from that backing
// until the first edit, which detaches into owned storage (copy-on-write).
// Warm (editing) buffers keep the classic gap representation, plus a
// materialization cache so repeated whole-text reads between edits cost
// one copy, not one per call.
package text

import (
	"fmt"
	"unsafe"
)

// Edit is a single text modification: Removed bytes at Offset were replaced
// by Inserted.
type Edit struct {
	Offset   int
	Removed  int
	Inserted string
}

// Delta is the signed length change of the edit.
func (e Edit) Delta() int { return len(e.Inserted) - e.Removed }

func (e Edit) String() string {
	return fmt.Sprintf("@%d -%d +%q", e.Offset, e.Removed, e.Inserted)
}

// Buffer is a gap buffer over bytes with an edit history. The zero value is
// an empty buffer.
type Buffer struct {
	data    []byte
	gapLo   int // start of the gap
	gapHi   int // end of the gap (exclusive)
	version int
	log     []loggedEdit

	// ro marks adopted, possibly shared backing storage (NewBuffer,
	// NewBufferBytes): data must never be written through; the first Apply
	// detaches into an owned array. An ro buffer always has a zero-width
	// gap at the end, so its text is contiguous by construction.
	ro bool
	// str caches the materialized text: the adopted source string while ro,
	// or the result of the last String() call since the last edit. "" means
	// not cached (or genuinely empty — Len disambiguates).
	str string
}

type loggedEdit struct {
	version int
	edit    Edit
}

// NewBuffer creates a buffer holding s. The string is adopted, not copied:
// until the first edit the buffer reads directly from s's bytes (and
// String returns s itself), so opening a large cold file costs no copy.
// The first Apply detaches the buffer into owned storage, leaving s
// untouched.
func NewBuffer(s string) *Buffer {
	return &Buffer{
		data:  unsafe.Slice(unsafe.StringData(s), len(s)),
		gapLo: len(s),
		gapHi: len(s),
		ro:    true,
		str:   s,
	}
}

// NewBufferBytes creates a buffer over data without copying it. The caller
// promises not to mutate data for the buffer's lifetime (an mmap'd region,
// Mapped.Bytes, satisfies this); the buffer itself never writes through it
// (copy-on-write, as NewBuffer). Close an underlying mapping only after
// the buffer has been edited once or is no longer read.
func NewBufferBytes(data []byte) *Buffer {
	return &Buffer{
		data:  data,
		gapLo: len(data),
		gapHi: len(data),
		ro:    true,
		str:   unsafeString(data),
	}
}

// unsafeString views b as a string without copying. Callers must guarantee
// b is never written while the string is reachable.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Footprint estimates the buffer's resident bytes: the backing array
// (gap included) plus the edit log's entries and their captured insert
// text. Adopted (ro) backing counts too — it is held alive by the buffer.
func (b *Buffer) Footprint() int64 {
	n := int64(cap(b.data))
	n += int64(cap(b.log)) * int64(unsafe.Sizeof(loggedEdit{}))
	for i := range b.log {
		n += int64(len(b.log[i].edit.Inserted))
	}
	return n
}

// Len returns the text length in bytes.
func (b *Buffer) Len() int { return len(b.data) - (b.gapHi - b.gapLo) }

// Version returns the buffer version; it increments on every edit.
func (b *Buffer) Version() int { return b.version }

// String materializes the whole text. The result is cached until the next
// edit, so only the first call after an edit pays the copy; on an unedited
// adopted buffer it is the original source string, zero-copy.
func (b *Buffer) String() string {
	if b.str == "" && b.Len() > 0 {
		if b.gapLo == b.Len() {
			b.str = string(b.data[:b.gapLo])
		} else {
			out := make([]byte, b.Len())
			n := copy(out, b.data[:b.gapLo])
			copy(out[n:], b.data[b.gapHi:])
			b.str = unsafeString(out) // out never escapes as []byte
		}
	}
	return b.str
}

// Slice returns the text in [lo, hi). When the whole text is already
// materialized (unedited adopted buffer, or any buffer after a String
// call) the result is a zero-copy substring; otherwise it is built from at
// most two contiguous spans.
func (b *Buffer) Slice(lo, hi int) string {
	if lo < 0 || hi > b.Len() || lo > hi {
		panic(fmt.Sprintf("text: slice [%d,%d) out of range (len %d)", lo, hi, b.Len()))
	}
	if b.str != "" || b.Len() == 0 {
		return b.str[lo:hi]
	}
	switch {
	case hi <= b.gapLo:
		return string(b.data[lo:hi])
	case lo >= b.gapLo:
		return string(b.data[lo+(b.gapHi-b.gapLo) : hi+(b.gapHi-b.gapLo)])
	default:
		out := make([]byte, hi-lo)
		n := copy(out, b.data[lo:b.gapLo])
		copy(out[n:], b.data[b.gapHi:b.gapHi+(hi-b.gapLo)])
		return unsafeString(out)
	}
}

// Bytes returns the whole text as one contiguous byte slice, moving the
// gap to the end if necessary (no allocation either way). The view is
// read-only — writing through it corrupts the buffer (and, for an adopted
// buffer, the caller's string or mapping) — and is invalidated by the next
// edit.
func (b *Buffer) Bytes() []byte {
	if n := b.Len(); b.gapLo != n {
		b.moveGap(n)
		b.str = "" // spans moved; a cached materialization is stale-free but rebuild lazily
	}
	return b.data[:b.Len()]
}

// ByteAt returns the byte at position i.
func (b *Buffer) ByteAt(i int) byte {
	if i < b.gapLo {
		return b.data[i]
	}
	return b.data[i+(b.gapHi-b.gapLo)]
}

// moveGap positions the gap start at offset. Never called while ro (an ro
// buffer's gap is already trailing and zero-width).
func (b *Buffer) moveGap(offset int) {
	switch {
	case offset < b.gapLo:
		n := b.gapLo - offset
		copy(b.data[b.gapHi-n:b.gapHi], b.data[offset:b.gapLo])
		b.gapLo = offset
		b.gapHi -= n
	case offset > b.gapLo:
		n := offset - b.gapLo
		copy(b.data[b.gapLo:], b.data[b.gapHi:b.gapHi+n])
		b.gapLo += n
		b.gapHi += n
	}
}

// grow ensures the gap holds at least n more bytes.
func (b *Buffer) grow(n int) {
	if b.gapHi-b.gapLo >= n {
		return
	}
	newCap := 2*len(b.data) + n
	nd := make([]byte, newCap)
	copy(nd, b.data[:b.gapLo])
	tail := len(b.data) - b.gapHi
	copy(nd[newCap-tail:], b.data[b.gapHi:])
	b.gapHi = newCap - tail
	b.data = nd
}

// detach copies adopted (read-only) backing into owned storage with a gap
// sized for at least n inserted bytes — the copy-on-write step, paid once
// on the first edit.
func (b *Buffer) detach(n int) {
	gap := n + 64
	nd := make([]byte, b.gapLo+gap)
	copy(nd, b.data[:b.gapLo])
	b.data = nd
	b.gapHi = b.gapLo + gap
	b.ro = false
}

// Apply performs the edit, logs it, and bumps the version.
func (b *Buffer) Apply(e Edit) {
	// Overflow-safe: Offset+Removed can wrap negative for adversarial
	// values; compare without the addition.
	if e.Offset < 0 || e.Removed < 0 || e.Offset > b.Len() || e.Removed > b.Len()-e.Offset {
		panic(fmt.Sprintf("text: edit %v out of range (len %d)", e, b.Len()))
	}
	if b.ro {
		b.detach(len(e.Inserted))
	}
	b.str = ""
	b.moveGap(e.Offset)
	b.gapHi += e.Removed // absorb removed bytes into the gap
	b.grow(len(e.Inserted))
	copy(b.data[b.gapLo:], e.Inserted)
	b.gapLo += len(e.Inserted)
	b.version++
	b.log = append(b.log, loggedEdit{version: b.version, edit: e})
}

// Replace is shorthand for Apply.
func (b *Buffer) Replace(offset, removed int, inserted string) {
	b.Apply(Edit{Offset: offset, Removed: removed, Inserted: inserted})
}

// Insert inserts text at offset.
func (b *Buffer) Insert(offset int, s string) { b.Replace(offset, 0, s) }

// Delete removes n bytes at offset.
func (b *Buffer) Delete(offset, n int) { b.Replace(offset, n, "") }

// EditsSince returns the edits applied after version v, oldest first.
func (b *Buffer) EditsSince(v int) []Edit {
	var out []Edit
	for _, le := range b.log {
		if le.version > v {
			out = append(out, le.edit)
		}
	}
	return out
}

// TrimLog discards history at or before version v (memory management).
func (b *Buffer) TrimLog(v int) {
	keep := b.log[:0]
	for _, le := range b.log {
		if le.version > v {
			keep = append(keep, le)
		}
	}
	b.log = keep
}
