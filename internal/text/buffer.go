// Package text provides an editable text buffer — a gap buffer with a
// version-stamped edit log — serving as the textual half of the
// self-versioning document model the incremental analyses are built on
// (Wagner & Graham, CompCon 97 [26]).
package text

import (
	"fmt"
	"strings"
)

// Edit is a single text modification: Removed bytes at Offset were replaced
// by Inserted.
type Edit struct {
	Offset   int
	Removed  int
	Inserted string
}

// Delta is the signed length change of the edit.
func (e Edit) Delta() int { return len(e.Inserted) - e.Removed }

func (e Edit) String() string {
	return fmt.Sprintf("@%d -%d +%q", e.Offset, e.Removed, e.Inserted)
}

// Buffer is a gap buffer over bytes with an edit history. The zero value is
// an empty buffer.
type Buffer struct {
	data    []byte
	gapLo   int // start of the gap
	gapHi   int // end of the gap (exclusive)
	version int
	log     []loggedEdit
}

type loggedEdit struct {
	version int
	edit    Edit
}

// NewBuffer creates a buffer holding s.
func NewBuffer(s string) *Buffer {
	b := &Buffer{data: make([]byte, len(s)+64)}
	copy(b.data, s)
	b.gapLo = len(s)
	b.gapHi = len(b.data)
	return b
}

// Len returns the text length in bytes.
func (b *Buffer) Len() int { return len(b.data) - (b.gapHi - b.gapLo) }

// Version returns the buffer version; it increments on every edit.
func (b *Buffer) Version() int { return b.version }

// String materializes the whole text.
func (b *Buffer) String() string {
	var sb strings.Builder
	sb.Grow(b.Len())
	sb.Write(b.data[:b.gapLo])
	sb.Write(b.data[b.gapHi:])
	return sb.String()
}

// Slice returns the text in [lo, hi).
func (b *Buffer) Slice(lo, hi int) string {
	if lo < 0 || hi > b.Len() || lo > hi {
		panic(fmt.Sprintf("text: slice [%d,%d) out of range (len %d)", lo, hi, b.Len()))
	}
	var sb strings.Builder
	sb.Grow(hi - lo)
	for i := lo; i < hi; i++ {
		sb.WriteByte(b.ByteAt(i))
	}
	return sb.String()
}

// ByteAt returns the byte at position i.
func (b *Buffer) ByteAt(i int) byte {
	if i < b.gapLo {
		return b.data[i]
	}
	return b.data[i+(b.gapHi-b.gapLo)]
}

// moveGap positions the gap start at offset.
func (b *Buffer) moveGap(offset int) {
	switch {
	case offset < b.gapLo:
		n := b.gapLo - offset
		copy(b.data[b.gapHi-n:b.gapHi], b.data[offset:b.gapLo])
		b.gapLo = offset
		b.gapHi -= n
	case offset > b.gapLo:
		n := offset - b.gapLo
		copy(b.data[b.gapLo:], b.data[b.gapHi:b.gapHi+n])
		b.gapLo += n
		b.gapHi += n
	}
}

// grow ensures the gap holds at least n more bytes.
func (b *Buffer) grow(n int) {
	if b.gapHi-b.gapLo >= n {
		return
	}
	newCap := 2*len(b.data) + n
	nd := make([]byte, newCap)
	copy(nd, b.data[:b.gapLo])
	tail := len(b.data) - b.gapHi
	copy(nd[newCap-tail:], b.data[b.gapHi:])
	b.gapHi = newCap - tail
	b.data = nd
}

// Apply performs the edit, logs it, and bumps the version.
func (b *Buffer) Apply(e Edit) {
	// Overflow-safe: Offset+Removed can wrap negative for adversarial
	// values; compare without the addition.
	if e.Offset < 0 || e.Removed < 0 || e.Offset > b.Len() || e.Removed > b.Len()-e.Offset {
		panic(fmt.Sprintf("text: edit %v out of range (len %d)", e, b.Len()))
	}
	b.moveGap(e.Offset)
	b.gapHi += e.Removed // absorb removed bytes into the gap
	b.grow(len(e.Inserted))
	copy(b.data[b.gapLo:], e.Inserted)
	b.gapLo += len(e.Inserted)
	b.version++
	b.log = append(b.log, loggedEdit{version: b.version, edit: e})
}

// Replace is shorthand for Apply.
func (b *Buffer) Replace(offset, removed int, inserted string) {
	b.Apply(Edit{Offset: offset, Removed: removed, Inserted: inserted})
}

// Insert inserts text at offset.
func (b *Buffer) Insert(offset int, s string) { b.Replace(offset, 0, s) }

// Delete removes n bytes at offset.
func (b *Buffer) Delete(offset, n int) { b.Replace(offset, n, "") }

// EditsSince returns the edits applied after version v, oldest first.
func (b *Buffer) EditsSince(v int) []Edit {
	var out []Edit
	for _, le := range b.log {
		if le.version > v {
			out = append(out, le.edit)
		}
	}
	return out
}

// TrimLog discards history at or before version v (memory management).
func (b *Buffer) TrimLog(v int) {
	keep := b.log[:0]
	for _, le := range b.log {
		if le.version > v {
			keep = append(keep, le)
		}
	}
	b.log = keep
}
