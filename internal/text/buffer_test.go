package text

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicEditing(t *testing.T) {
	b := NewBuffer("hello world")
	if b.Len() != 11 || b.String() != "hello world" {
		t.Fatalf("initial: %q len %d", b.String(), b.Len())
	}
	b.Replace(0, 5, "goodbye")
	if b.String() != "goodbye world" {
		t.Fatalf("after replace: %q", b.String())
	}
	b.Insert(7, ",")
	if b.String() != "goodbye, world" {
		t.Fatalf("after insert: %q", b.String())
	}
	b.Delete(7, 1)
	if b.String() != "goodbye world" {
		t.Fatalf("after delete: %q", b.String())
	}
	if b.Version() != 3 {
		t.Fatalf("version = %d, want 3", b.Version())
	}
}

func TestSliceAndByteAt(t *testing.T) {
	b := NewBuffer("0123456789")
	b.Replace(5, 0, "abc") // 01234abc56789; gap sits mid-buffer
	want := "01234abc56789"
	if b.String() != want {
		t.Fatalf("String = %q", b.String())
	}
	for i := 0; i < len(want); i++ {
		if b.ByteAt(i) != want[i] {
			t.Fatalf("ByteAt(%d) = %c, want %c", i, b.ByteAt(i), want[i])
		}
	}
	if got := b.Slice(3, 9); got != want[3:9] {
		t.Fatalf("Slice = %q, want %q", got, want[3:9])
	}
	if got := b.Slice(0, 0); got != "" {
		t.Fatalf("empty slice = %q", got)
	}
}

func TestEditLog(t *testing.T) {
	b := NewBuffer("abc")
	v0 := b.Version()
	b.Insert(3, "d")
	b.Delete(0, 1)
	edits := b.EditsSince(v0)
	if len(edits) != 2 {
		t.Fatalf("edits = %d, want 2", len(edits))
	}
	if edits[0].Inserted != "d" || edits[1].Removed != 1 {
		t.Fatalf("edits = %v", edits)
	}
	b.TrimLog(b.Version())
	if len(b.EditsSince(v0)) != 0 {
		t.Fatalf("log not trimmed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := NewBuffer("abc")
	for _, f := range []func(){
		func() { b.Replace(4, 0, "x") },
		func() { b.Replace(0, 4, "") },
		func() { b.Slice(-1, 2) },
		func() { b.Slice(1, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandomizedAgainstString(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := NewBuffer("")
	model := ""
	for i := 0; i < 3000; i++ {
		off := 0
		if len(model) > 0 {
			off = rng.Intn(len(model) + 1)
		}
		rem := 0
		if off < len(model) {
			rem = rng.Intn(len(model) - off + 1)
			if rem > 5 {
				rem = 5
			}
		}
		ins := strings.Repeat(string(rune('a'+rng.Intn(26))), rng.Intn(4))
		b.Replace(off, rem, ins)
		model = model[:off] + ins + model[off+rem:]
		if b.Len() != len(model) {
			t.Fatalf("step %d: len %d vs %d", i, b.Len(), len(model))
		}
		if i%50 == 0 && b.String() != model {
			t.Fatalf("step %d: %q vs %q", i, b.String(), model)
		}
	}
	if b.String() != model {
		t.Fatalf("final mismatch")
	}
}

func TestQuickInsertDelete(t *testing.T) {
	// Property: insert then delete of the same span is the identity.
	f := func(prefix, ins, suffix string) bool {
		base := prefix + suffix
		b := NewBuffer(base)
		b.Insert(len(prefix), ins)
		b.Delete(len(prefix), len(ins))
		return b.String() == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestApplyOverflowPanicsCleanly: adversarial Offset/Removed values whose
// sum wraps negative must still hit the range check, not a confusing slice
// panic deeper in.
func TestApplyOverflowPanicsCleanly(t *testing.T) {
	for _, e := range []Edit{
		{Offset: 1, Removed: int(^uint(0) >> 1)},
		{Offset: int(^uint(0) >> 1), Removed: 2},
		{Offset: 0, Removed: -1},
	} {
		func() {
			defer func() {
				if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "out of range") {
					t.Errorf("Apply(%+v): want out-of-range panic, got %v", e, r)
				}
			}()
			NewBuffer("abc").Apply(e)
		}()
	}
}
