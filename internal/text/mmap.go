package text

// Mapped is a read-only file mapping (or, on platforms without mmap and for
// empty files, a plain in-memory read). Its bytes back a Buffer zero-copy
// via NewBufferBytes; keep it open while any unedited buffer or string view
// over it is still in use.
type Mapped struct {
	data   []byte
	mapped bool // true when data came from the OS mapper and needs unmapping
}

// Bytes returns the mapped contents. Read-only: writing through it faults
// on a real mapping.
func (m *Mapped) Bytes() []byte { return m.data }

// Text returns the mapped contents as a zero-copy string.
func (m *Mapped) Text() string { return unsafeString(m.data) }

// Len returns the mapped length in bytes.
func (m *Mapped) Len() int { return len(m.data) }

// Buffer returns a new zero-copy Buffer over the mapping.
func (m *Mapped) Buffer() *Buffer { return NewBufferBytes(m.data) }

// Close releases the mapping. Views obtained before Close (Bytes, Text, an
// unedited Buffer) must not be used afterwards. Safe to call twice.
func (m *Mapped) Close() error {
	data, mapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if !mapped {
		return nil
	}
	return munmap(data)
}

// MapFile maps the file at path read-only for zero-copy lexing of large
// cold inputs. Empty files (mmap of length 0 is an error on Linux) and
// platforms without a mapper fall back to an ordinary read; callers never
// need to distinguish the two.
func MapFile(path string) (*Mapped, error) {
	return mapFile(path)
}
