//go:build linux

package text

import (
	"os"
	"syscall"
)

func mapFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	// Zero-length mmap fails with EINVAL; non-regular files (pipes, /proc)
	// have no meaningful size — read both the ordinary way.
	if size == 0 || !st.Mode().IsRegular() {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &Mapped{data: data}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// mmap can fail on exotic filesystems; degrade to a read.
		fallback, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, err
		}
		return &Mapped{data: fallback}, nil
	}
	return &Mapped{data: data, mapped: true}, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
