//go:build !linux

package text

import "os"

func mapFile(path string) (*Mapped, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapped{data: data}, nil
}

func munmap(data []byte) error { return nil }
