package text

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unsafe"
)

// TestAdoptZeroCopy: an unedited buffer serves every read from the adopted
// string's own bytes — no copies.
func TestAdoptZeroCopy(t *testing.T) {
	src := strings.Repeat("the quick brown fox\n", 64)
	b := NewBuffer(src)

	if got := b.String(); unsafe.StringData(got) != unsafe.StringData(src) {
		t.Fatal("String() on unedited buffer is not the adopted string")
	}
	if got := b.Slice(4, 9); got != "quick" {
		t.Fatalf("Slice = %q", got)
	} else if unsafe.StringData(got) != unsafe.StringData(src[4:9]) {
		t.Fatal("Slice() on unedited buffer copied")
	}
	if bs := b.Bytes(); unsafe.SliceData(bs) != unsafe.StringData(src) {
		t.Fatal("Bytes() on unedited buffer copied")
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = b.String()
		_ = b.Slice(1, 10)
		_ = b.Bytes()
	})
	if allocs != 0 {
		t.Fatalf("unedited reads allocate: %v allocs/op", allocs)
	}
}

// TestCopyOnWriteLeavesOriginal: the first edit detaches; the adopted
// string and mapped bytes are never written through.
func TestCopyOnWriteLeavesOriginal(t *testing.T) {
	src := "hello, world"
	b := NewBuffer(src)
	b.Replace(0, 5, "goodbye")
	if src != "hello, world" {
		t.Fatalf("adopted string mutated: %q", src)
	}
	if got := b.String(); got != "goodbye, world" {
		t.Fatalf("after edit: %q", got)
	}
	if unsafe.StringData(b.String()) == unsafe.StringData(src) {
		t.Fatal("edited buffer still aliases the adopted string")
	}

	raw := []byte("byte-backed text")
	orig := append([]byte(nil), raw...)
	bb := NewBufferBytes(raw)
	bb.Insert(0, "XX ")
	if !bytes.Equal(raw, orig) {
		t.Fatalf("adopted bytes mutated: %q", raw)
	}
	if got := bb.String(); got != "XX byte-backed text" {
		t.Fatalf("after edit: %q", got)
	}
}

// TestStringCacheAcrossEdits: String() is stable and correct before/after
// edits, and repeated calls between edits don't re-copy.
func TestStringCacheAcrossEdits(t *testing.T) {
	b := NewBuffer("abc def ghi")
	b.Replace(4, 3, "DEF")
	s1 := b.String()
	s2 := b.String()
	if s1 != "abc DEF ghi" {
		t.Fatalf("got %q", s1)
	}
	if unsafe.StringData(s1) != unsafe.StringData(s2) {
		t.Fatal("String() not cached between edits")
	}
	b.Delete(0, 4)
	if got := b.String(); got != "DEF ghi" {
		t.Fatalf("after second edit: %q", got)
	}
}

// TestEditsSpanningGap exercises edits that straddle the gap position left
// by previous edits, including removals crossing it in both directions.
func TestEditsSpanningGap(t *testing.T) {
	src := strings.Repeat("abcdefghij", 100) // 1000 bytes
	b := NewBuffer(src)
	ref := []byte(src)

	apply := func(off, rem int, ins string) {
		t.Helper()
		b.Replace(off, rem, ins)
		ref = append(ref[:off], append([]byte(ins), ref[off+rem:]...)...)
		if got := b.String(); got != string(ref) {
			t.Fatalf("divergence after @%d -%d +%q", off, rem, ins)
		}
	}

	apply(500, 0, "MID")   // gap now just after 503
	apply(490, 20, "SPAN") // removal crosses the old gap from the left
	apply(100, 0, "LEFT")  // gap jumps far left
	apply(95, 10, "X")     // removal crosses the new gap
	apply(0, 0, "HEAD")
	apply(b.Len()-5, 5, "TAIL") // at the far right
	apply(0, b.Len(), "")       // delete everything
	if b.Len() != 0 || b.String() != "" {
		t.Fatalf("expected empty, got %q", b.String())
	}
	apply(0, 0, "rebuilt")
}

// TestMultiMBBuffer: multi-megabyte adopted buffer — zero-copy reads, a
// mid-file edit spanning the gap, and Bytes() compaction all stay correct.
func TestMultiMBBuffer(t *testing.T) {
	var sb strings.Builder
	line := "func f(x int) int { return x * 2 } // padding padding padding\n"
	for sb.Len() < 4<<20 {
		sb.WriteString(line)
	}
	src := sb.String()
	b := NewBuffer(src)
	if b.Len() != len(src) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(src))
	}
	if unsafe.StringData(b.String()) != unsafe.StringData(src) {
		t.Fatal("multi-MB adoption copied")
	}

	mid := len(src) / 2
	b.Replace(mid, 10, "EDITED")
	want := src[:mid] + "EDITED" + src[mid+10:]
	if got := b.String(); got != want {
		t.Fatal("multi-MB edit diverged")
	}
	// Bytes() must compact the gap and match, with the edit in place.
	if got := b.Bytes(); !bytes.Equal(got, []byte(want)) {
		t.Fatal("Bytes() diverged after edit")
	}
	// Slice across the edited region.
	if got := b.Slice(mid-3, mid+9); got != want[mid-3:mid+9] {
		t.Fatalf("Slice across edit = %q", got)
	}
}

// TestBytesContiguous: Bytes() returns the text with the gap moved out of
// the middle, without allocating.
func TestBytesContiguous(t *testing.T) {
	b := NewBuffer("0123456789")
	b.Insert(5, "---") // gap sits mid-buffer afterwards
	want := "01234---56789"
	allocs := testing.AllocsPerRun(10, func() {
		if got := b.Bytes(); string(got) != want {
			t.Fatalf("Bytes = %q, want %q", got, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("Bytes() allocates: %v allocs/op", allocs)
	}
}

func TestMapFile(t *testing.T) {
	dir := t.TempDir()

	t.Run("regular", func(t *testing.T) {
		path := filepath.Join(dir, "f.txt")
		content := strings.Repeat("mmap me\n", 4096)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := MapFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != len(content) || m.Text() != content {
			t.Fatal("mapped contents diverge")
		}
		buf := m.Buffer()
		if buf.String() != content {
			t.Fatal("buffer over mapping diverges")
		}
		// Editing detaches, so the buffer survives Close.
		buf.Replace(0, 4, "edit")
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(buf.String(), "edit me\n") {
			t.Fatalf("detached buffer corrupted after unmap: %q", buf.String()[:16])
		}
		if err := m.Close(); err != nil { // double close is a no-op
			t.Fatal(err)
		}
	})

	t.Run("empty", func(t *testing.T) {
		path := filepath.Join(dir, "empty.txt")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := MapFile(path)
		if err != nil {
			t.Fatalf("empty-file map: %v", err)
		}
		if m.Len() != 0 || m.Text() != "" {
			t.Fatalf("empty file mapped to %d bytes", m.Len())
		}
		b := m.Buffer()
		b.Insert(0, "now non-empty")
		if b.String() != "now non-empty" {
			t.Fatal("edit on empty-file buffer failed")
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("missing", func(t *testing.T) {
		if _, err := MapFile(filepath.Join(dir, "nope")); err == nil {
			t.Fatal("expected error for missing file")
		}
	})
}

func TestAdoptEmptyString(t *testing.T) {
	b := NewBuffer("")
	if b.Len() != 0 || b.String() != "" || len(b.Bytes()) != 0 {
		t.Fatal("empty adoption broken")
	}
	b.Insert(0, "x")
	if b.String() != "x" {
		t.Fatalf("got %q", b.String())
	}
}
