package incremental

// Option is a functional configuration knob for DefineLanguage and
// DefineGrammar. Options are applied to a copy of the LanguageDef, so a
// def value can be reused with different option sets.
type Option func(*LanguageDef)

// WithName sets the language name used in diagnostics.
func WithName(name string) Option {
	return func(d *LanguageDef) { d.Name = name }
}

// WithLexer sets the token rules; earlier rules win ties.
func WithLexer(rules ...LexRule) Option {
	return func(d *LanguageDef) { d.Lexer = rules }
}

// WithTokenSyms maps lexer rule names to grammar terminal names.
func WithTokenSyms(m map[string]string) Option {
	return func(d *LanguageDef) { d.TokenSyms = m }
}

// WithKeywords maps identifier lexemes (recognized under identRule) to
// keyword terminal names.
func WithKeywords(identRule string, m map[string]string) Option {
	return func(d *LanguageDef) { d.IdentRule, d.Keywords = identRule, m }
}

// WithMethod selects the LR table-construction algorithm (default LALR).
func WithMethod(m TableMethod) Option {
	return func(d *LanguageDef) { d.Method = m }
}

// WithPreferShift statically resolves remaining shift/reduce conflicts in
// favor of shifting (§4.1 static filter).
func WithPreferShift() Option {
	return func(d *LanguageDef) { d.PreferShift = true }
}

// WithNoPrecedence disables yacc-style precedence/associativity resolution.
func WithNoPrecedence() Option {
	return func(d *LanguageDef) { d.NoPrecedence = true }
}

// WithSemantics attaches a semantic-disambiguation configuration (§4.2) to
// the compiled language.
func WithSemantics(cfg SemanticsConfig) Option {
	return func(d *LanguageDef) { d.Semantics = &cfg }
}

// WithCompiledCache sets the directory for the compiled-artifact disk cache
// (the second level of the language cache: memory → disk → compile). The
// empty string selects the default, a per-user directory under
// os.UserCacheDir(). Corrupt, stale, or version-mismatched artifacts are
// ignored and recompiled silently.
func WithCompiledCache(dir string) Option {
	return func(d *LanguageDef) { d.compiledCacheDir, d.noDiskCache = dir, false }
}

// WithoutCompiledCache disables the compiled-artifact disk cache for this
// definition; languages are still deduplicated in memory.
func WithoutCompiledCache() Option {
	return func(d *LanguageDef) { d.noDiskCache = true }
}

// WithoutCache bypasses the compiled-language cache for this definition:
// the language is rebuilt even if an identical definition was compiled
// before, and the result is not retained.
func WithoutCache() Option {
	return func(d *LanguageDef) { d.noCache = true }
}

// DefineGrammar compiles a language from a grammar source plus options —
// the option-first spelling of DefineLanguage:
//
//	lang, err := incremental.DefineGrammar(grammarSrc,
//		incremental.WithLexer(rules...),
//		incremental.WithTokenSyms(syms),
//		incremental.WithMethod(incremental.LR1))
func DefineGrammar(grammarSrc string, opts ...Option) (*Language, error) {
	return DefineLanguage(LanguageDef{Grammar: grammarSrc}, opts...)
}
