package incremental

import (
	"context"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/isolate"
	"iglr/internal/recovery"
)

// ParseOption configures one Session.Do call. Options compose: the zero
// set is a plain incremental parse that fails on the first syntax error.
type ParseOption func(*parseConfig)

type parseConfig struct {
	tolerant      bool
	deterministic bool
}

// Tolerant enables two-tier error recovery for this call (the behavior of
// the deprecated ParseWithRecovery). Tier 1: a syntax error never reverts
// the user's text — the damage is confined to the smallest enclosing
// sequence region, the skipped tokens are kept verbatim under error nodes
// in the committed tree, and Diagnostics reports them. Tier 2, only when
// isolation cannot bound the damage: history-sensitive replay, where
// failing edits are reverted and reported in Outcome.Unincorporated.
// Infrastructure failures (ErrBudget, cancellation) abort with pending
// edits intact and trigger neither tier.
func Tolerant() ParseOption {
	return func(c *parseConfig) { c.tolerant = true }
}

// Deterministic switches the session to the deterministic incremental
// parser (§3.2 baseline) before parsing — the option spelling of
// UseDeterministic, and like it the switch is sticky: later Do calls on
// the same session keep using the deterministic parser. Do fails with an
// error if the language's table has conflicts. Syntax errors under the
// deterministic parser are re-run through the GLR parser so recovery and
// diagnostics behave identically in both modes.
func Deterministic() ParseOption {
	return func(c *parseConfig) { c.deterministic = true }
}

// Outcome is the result of one Session.Do call — the single result shape
// for every parse mode (plain, deterministic, tolerant).
type Outcome struct {
	// Root is the committed parse dag. It is non-nil on success; under
	// Tolerant it may also be non-nil alongside a non-nil Err when tier-2
	// recovery restored and committed the baseline text.
	Root *Node
	// Clean reports that the parse succeeded with no recovery.
	Clean bool
	// Isolated reports that tier-1 error isolation produced Root
	// (Tolerant only): the text was preserved verbatim and the damage is
	// quarantined under ErrorRegions error nodes. Diagnostics() locates
	// them.
	Isolated bool
	// ErrorRegions counts the quarantined error nodes in Root when
	// Isolated.
	ErrorRegions int
	// Incorporated holds the edits this call committed; Unincorporated
	// holds edits reverted by tier-2 recovery, in application order. Both
	// are populated under Tolerant only (the plain path leaves them nil to
	// preserve the zero-allocation clean reparse guarantee).
	Incorporated, Unincorporated []AppliedEdit
	// Stats snapshots the session's IGLR work counters after the call
	// (identical to Session.Stats()).
	Stats ParseStats
	// Err is nil on success. On the plain path it carries line/column
	// information as a *ParseError for syntax errors; budget trips and
	// cancellation pass through unwrapped (match with ErrBudget /
	// errors.Is(err, ctx.Err())). Under Tolerant, see the Tolerant option
	// for when Err is set.
	Err error
}

// Do (re)parses the document incrementally, committing on success — the
// context-first session API unifying the deprecated
// Parse/ParseContext/ParseWithRecovery/ParseWithRecoveryContext four-way
// split. The previous committed tree is retained on failure. The parser
// polls ctx periodically and abandons the parse with an error satisfying
// errors.Is(err, ctx.Err()) once the context is done; a nil ctx disables
// the checks, and a cancelled parse can simply be retried.
func (s *Session) Do(ctx context.Context, opts ...ParseOption) Outcome {
	// Zero options is the hot path (a clean deterministic reparse must stay
	// allocation-free): skip the config application, whose indirect calls
	// would force the config to the heap.
	if len(opts) == 0 {
		return s.doPlain(ctx)
	}
	var cfg parseConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.deterministic && s.det == nil {
		if err := s.UseDeterministic(); err != nil {
			return Outcome{Err: err, Stats: s.stats}
		}
	}
	if cfg.tolerant {
		return s.doTolerant(ctx)
	}
	return s.doPlain(ctx)
}

// doPlain is Do's fail-fast path: parse, commit on success, report the
// located error otherwise.
func (s *Session) doPlain(ctx context.Context) Outcome {
	root, err := s.parseOnce(ctx)
	if err != nil {
		return Outcome{Err: s.locate(err), Stats: s.stats}
	}
	s.doc.Commit(root)
	return Outcome{Root: root, Clean: true, Stats: s.stats}
}

// doTolerant is Do's two-tier recovery path (see the Tolerant option).
func (s *Session) doTolerant(ctx context.Context) Outcome {
	pending := s.doc.PendingEdits()
	root, err := s.parseOnce(ctx)
	if err == nil {
		s.doc.Commit(root)
		return Outcome{Root: root, Incorporated: pending, Clean: true, Stats: s.stats}
	}
	if recovery.IsInfrastructure(err) {
		return Outcome{Err: err, Stats: s.stats}
	}
	// Tier 1: text-preserving isolation, always driven by the GLR parser
	// (deterministic sessions hand their syntax errors over anyway).
	if res, ierr := isolate.Reparse(ctx, s.doc, s.parser); ierr == nil {
		s.doc.Commit(res.Root)
		return Outcome{Root: res.Root, Incorporated: pending,
			Isolated: true, ErrorRegions: len(res.Errors), Stats: s.stats}
	} else if recovery.IsInfrastructure(ierr) {
		return Outcome{Err: ierr, Stats: s.stats}
	}
	// Tier 2: history-sensitive edit replay.
	rec := recovery.Parse(s.doc, func(d *document.Document) (*Node, error) {
		return s.parseOnce(ctx)
	})
	return Outcome{
		Root:           rec.Root,
		Clean:          rec.Clean,
		Incorporated:   rec.Incorporated,
		Unincorporated: rec.Unincorporated,
		Err:            rec.Err,
		Stats:          s.stats,
	}
}

// NodeSpan reports n's byte span in the current text. n must belong to the
// session's committed tree; ok is false when the node's entire yield has
// been edited away (or n has no terminal yield). Positions track pending
// edits, so a span stays valid while edits accumulate before the next Do.
func (s *Session) NodeSpan(n *Node) (offset, length int, ok bool) {
	return s.doc.NodeSpan(n)
}

// Subtree returns the smallest node in the committed tree whose span
// covers [offset, offset+length), descending through choice nodes via
// their first unfiltered alternative. It returns the root when no smaller
// node covers the range, and nil before the first successful Do (or when
// the range lies outside every node's span). The returned node is owned by
// the session's tree and must not be mutated.
func (s *Session) Subtree(offset, length int) *Node {
	n := s.doc.Root()
	if n == nil {
		return nil
	}
	if off, ln, ok := s.doc.NodeSpan(n); !ok || offset < off || offset+length > off+ln {
		return nil
	}
	if length < 1 {
		length = 1
	}
descend:
	for {
		kids := n.Kids
		if n.Kind == dag.KindChoice {
			// Alternatives cover the same span; narrow into the reading the
			// pipeline would embed.
			for _, alt := range kids {
				if alt != nil && !alt.Filtered {
					n = alt
					continue descend
				}
			}
			return n
		}
		for _, k := range kids {
			if k == nil {
				continue
			}
			off, ln, ok := s.doc.NodeSpan(k)
			if ok && offset >= off && offset+length <= off+ln {
				n = k
				continue descend
			}
		}
		return n
	}
}
