package incremental_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	incremental "iglr"
)

// twin drives two sessions over the same language and source through the
// same edit script: one via the deprecated four-way API, one via Do. Every
// step asserts the results are identical — the differential contract that
// lets the old methods be thin wrappers.
type twin struct {
	t        *testing.T
	old, new *incremental.Session
}

func newTwin(t *testing.T, lang *incremental.Language, src string, opts ...incremental.SessionOption) *twin {
	return &twin{
		t:   t,
		old: incremental.NewSession(lang, src, opts...),
		new: incremental.NewSession(lang, src, opts...),
	}
}

func (tw *twin) edit(offset, removed int, inserted string) {
	tw.old.Edit(offset, removed, inserted)
	tw.new.Edit(offset, removed, inserted)
}

// sameErr compares error identity loosely: both nil, or both non-nil with
// equal strings (located ParseErrors carry positions in the message).
func sameErr(t *testing.T, step string, oldErr, newErr error) {
	t.Helper()
	switch {
	case (oldErr == nil) != (newErr == nil):
		t.Fatalf("%s: error mismatch: old=%v new=%v", step, oldErr, newErr)
	case oldErr != nil && oldErr.Error() != newErr.Error():
		t.Fatalf("%s: error text mismatch: old=%q new=%q", step, oldErr, newErr)
	}
}

// parse runs ParseContext on old and Do on new and asserts equivalence.
func (tw *twin) parse(ctx context.Context, step string) {
	tw.t.Helper()
	oldRoot, oldErr := tw.old.ParseContext(ctx)
	out := tw.new.Do(ctx)
	sameErr(tw.t, step, oldErr, out.Err)
	if (oldRoot == nil) != (out.Root == nil) {
		tw.t.Fatalf("%s: root presence mismatch", step)
	}
	if oldErr == nil && !out.Clean {
		tw.t.Fatalf("%s: successful Do must report Clean", step)
	}
	tw.sameState(step)
}

// recover runs ParseWithRecoveryContext on old and Do(Tolerant()) on new.
func (tw *twin) recover(ctx context.Context, step string) {
	tw.t.Helper()
	oldOut := tw.old.ParseWithRecoveryContext(ctx)
	out := tw.new.Do(ctx, incremental.Tolerant())
	sameErr(tw.t, step, oldOut.Err, out.Err)
	if oldOut.Clean != out.Clean || oldOut.Isolated != out.Isolated ||
		oldOut.ErrorRegions != out.ErrorRegions {
		tw.t.Fatalf("%s: outcome shape mismatch: old={clean:%v isolated:%v regions:%d} new={clean:%v isolated:%v regions:%d}",
			step, oldOut.Clean, oldOut.Isolated, oldOut.ErrorRegions,
			out.Clean, out.Isolated, out.ErrorRegions)
	}
	if len(oldOut.Incorporated) != len(out.Incorporated) ||
		len(oldOut.Unincorporated) != len(out.Unincorporated) {
		tw.t.Fatalf("%s: edit bookkeeping mismatch: old=%d/%d new=%d/%d", step,
			len(oldOut.Incorporated), len(oldOut.Unincorporated),
			len(out.Incorporated), len(out.Unincorporated))
	}
	tw.sameState(step)
}

// sameState asserts both sessions converged to the same document and
// diagnostic state.
func (tw *twin) sameState(step string) {
	tw.t.Helper()
	if tw.old.Text() != tw.new.Text() {
		tw.t.Fatalf("%s: text diverged:\nold: %q\nnew: %q", step, tw.old.Text(), tw.new.Text())
	}
	oldD, newD := tw.old.Diagnostics(), tw.new.Diagnostics()
	if !reflect.DeepEqual(oldD, newD) {
		tw.t.Fatalf("%s: diagnostics diverged:\nold: %v\nnew: %v", step, oldD, newD)
	}
	if tw.old.Stats() != tw.new.Stats() {
		tw.t.Fatalf("%s: stats diverged:\nold: %+v\nnew: %+v", step, tw.old.Stats(), tw.new.Stats())
	}
}

// TestDoDifferentialClean drives clean edit scripts over several bundled
// languages through both APIs.
func TestDoDifferentialClean(t *testing.T) {
	cases := []struct {
		name string
		lang *incremental.Language
		src  string
		edit func(tw *twin)
	}{
		{"expr", incremental.ExprLanguage(), "1+2*3", func(tw *twin) {
			tw.edit(0, 0, "9*")
			tw.edit(2, 1, "7")
		}},
		{"c-subset", incremental.CSubset(), "int a = 1; { a = a + 2; }", func(tw *twin) {
			tw.edit(4, 1, "b")
			tw.edit(13, 1, "b")
			tw.edit(17, 1, "b")
		}},
		{"java-subset", incremental.JavaSubset(), "class A { int f() { return 1; } }", func(tw *twin) {
			tw.edit(27, 1, "42")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tw := newTwin(t, tc.lang, tc.src)
			tw.parse(context.Background(), "initial")
			tc.edit(tw)
			tw.parse(context.Background(), "after edits")
			tw.recover(context.Background(), "tolerant on clean text")
		})
	}
}

// TestDoDifferentialSyntaxError covers the failing plain path (located
// *ParseError) and the tolerant tier-1 isolation path.
func TestDoDifferentialSyntaxError(t *testing.T) {
	lang := incremental.CSubset()
	src := "int a = 1; int b = 2; int c = 3;"
	tw := newTwin(t, lang, src)
	tw.parse(nil, "baseline")

	// Break the middle statement.
	tw.edit(15, 1, "= @@")
	oldRoot, oldErr := tw.old.ParseContext(nil)
	out := tw.new.Do(nil)
	if oldErr == nil || out.Err == nil {
		t.Fatalf("broken text must fail the plain path: old=%v new=%v", oldErr, out.Err)
	}
	sameErr(t, "plain failure", oldErr, out.Err)
	var pe *incremental.ParseError
	if !errors.As(out.Err, &pe) {
		t.Fatalf("Do must locate syntax errors as *ParseError, got %T", out.Err)
	}
	if oldRoot != nil || out.Root != nil {
		t.Fatal("failed plain parse must not return a root")
	}

	// Tolerant: both isolate the damage, text preserved.
	tw.recover(nil, "tolerant isolation")
	if tw.new.Text() == src {
		t.Fatal("tolerant parse must preserve the broken text")
	}
	if len(tw.new.Diagnostics()) == 0 {
		t.Fatal("isolation must surface diagnostics")
	}

	// Repair (undo the break) converges both back to clean.
	tw.edit(15, 4, "b")
	tw.recover(nil, "after repair")
	if len(tw.new.Diagnostics()) != 0 {
		t.Fatal("repaired text must clear diagnostics")
	}
}

// TestDoDifferentialBudget asserts budget trips surface identically and
// leave both committed trees intact.
func TestDoDifferentialBudget(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	tw := newTwin(t, lang, "1+2", incremental.WithBudget(incremental.Budget{MaxGSSLinks: 8}))
	// Hostile edit: a long undisambiguated chain.
	chain := ""
	for i := 0; i < 40; i++ {
		chain += "+1"
	}
	tw.edit(3, 0, chain)
	oldRoot, oldErr := tw.old.ParseContext(nil)
	out := tw.new.Do(nil)
	if !errors.Is(oldErr, incremental.ErrBudget) || !errors.Is(out.Err, incremental.ErrBudget) {
		t.Fatalf("want budget trips from both: old=%v new=%v", oldErr, out.Err)
	}
	if oldRoot != nil || out.Root != nil {
		t.Fatal("tripped parse must not return a root")
	}
	// Tolerant treats budget trips as infrastructure: aborts, pending intact.
	oldOut := tw.old.ParseWithRecoveryContext(nil)
	newOut := tw.new.Do(nil, incremental.Tolerant())
	if !errors.Is(oldOut.Err, incremental.ErrBudget) || !errors.Is(newOut.Err, incremental.ErrBudget) {
		t.Fatalf("tolerant budget trip mismatch: old=%v new=%v", oldOut.Err, newOut.Err)
	}
	if newOut.Isolated || newOut.Clean {
		t.Fatal("infrastructure failure must not claim recovery")
	}
}

// TestDoDifferentialCancellation asserts a cancelled context aborts both
// APIs with the context error and a retry succeeds.
func TestDoDifferentialCancellation(t *testing.T) {
	lang := incremental.CSubset()
	src := "int a = 1;"
	tw := newTwin(t, lang, src)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, oldErr := tw.old.ParseContext(ctx)
	out := tw.new.Do(ctx)
	if !errors.Is(oldErr, context.Canceled) || !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("want context.Canceled from both: old=%v new=%v", oldErr, out.Err)
	}
	tw.parse(context.Background(), "retry after cancel")
}

// TestDoDeterministic exercises the Deterministic option against the
// UseDeterministic spelling, including the conflicted-table failure.
func TestDoDeterministic(t *testing.T) {
	lang := incremental.Modula2Subset()
	oldS := incremental.NewSession(lang, "MODULE m; BEGIN END m.")
	if err := oldS.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	newS := incremental.NewSession(lang, "MODULE m; BEGIN END m.")
	oldRoot, oldErr := oldS.ParseContext(nil)
	out := newS.Do(nil, incremental.Deterministic())
	if oldErr != nil || out.Err != nil {
		t.Fatalf("deterministic parse failed: old=%v new=%v", oldErr, out.Err)
	}
	if (oldRoot == nil) != (out.Root == nil) {
		t.Fatal("root presence mismatch")
	}

	// A conflicted table must reject the option with an error, not a panic.
	amb := incremental.AmbiguousExprLanguage()
	s := incremental.NewSession(amb, "1+2")
	if out := s.Do(nil, incremental.Deterministic()); out.Err == nil {
		t.Fatal("Deterministic over a conflicted table must fail")
	}
	// The failure is sticky-free: a plain Do still works.
	if out := s.Do(nil); out.Err != nil {
		t.Fatalf("plain Do after rejected Deterministic: %v", out.Err)
	}
}

// TestDoTimeoutDeadline asserts Budget.MaxDuration trips surface through
// Do the same as through the wrappers.
func TestDoTimeoutDeadline(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	chain := "1"
	for i := 0; i < 200; i++ {
		chain += "+1"
	}
	s := incremental.NewSession(lang, chain,
		incremental.WithBudget(incremental.Budget{MaxDuration: time.Nanosecond}))
	out := s.Do(nil)
	if !errors.Is(out.Err, incremental.ErrBudget) {
		t.Fatalf("want deadline budget trip, got %v", out.Err)
	}
}

// TestWithTrace asserts the construction-time trace option delivers
// callbacks for the first parse (the handed-off-session use case).
func TestWithTrace(t *testing.T) {
	var lines int
	s := incremental.NewSession(incremental.ExprLanguage(), "1+2",
		incremental.WithTrace(func(format string, args ...any) { lines++ }))
	if out := s.Do(nil); out.Err != nil {
		t.Fatal(out.Err)
	}
	if lines == 0 {
		t.Fatal("WithTrace callback never fired")
	}
}

// TestSubtree covers the session-level subtree query the daemon's
// /subtree endpoint is built on.
func TestSubtree(t *testing.T) {
	lang := incremental.CSubset()
	src := "int a = 1; int b = 2;"
	s := incremental.NewSession(lang, src)
	if out := s.Do(nil); out.Err != nil {
		t.Fatal(out.Err)
	}
	// The span of "int b = 2;" — the subtree must cover it and be smaller
	// than the whole program.
	second := s.Subtree(11, 10)
	if second == nil {
		t.Fatal("no subtree for second statement")
	}
	off, ln, ok := s.NodeSpan(second)
	if !ok {
		t.Fatal("subtree has no span")
	}
	if off > 11 || off+ln < 21 {
		t.Fatalf("subtree span [%d,%d) does not cover [11,21)", off, off+ln)
	}
	if root := s.Tree(); second == root {
		rOff, rLn, _ := s.NodeSpan(root)
		if rOff != off || rLn != ln {
			t.Fatal("expected a narrower subtree than the root")
		}
	}
	// A single byte inside the first statement narrows further.
	first := s.Subtree(4, 1)
	if first == nil {
		t.Fatal("no subtree for first identifier")
	}
	fOff, fLn, _ := s.NodeSpan(first)
	if fLn >= len(src) {
		t.Fatalf("single-byte query returned the whole program [%d,%d)", fOff, fOff+fLn)
	}
	// Out-of-range queries return nil.
	if n := s.Subtree(len(src)+5, 1); n != nil {
		t.Fatal("out-of-range subtree must be nil")
	}
	// Before the first parse there is no tree to query.
	fresh := incremental.NewSession(lang, src)
	if n := fresh.Subtree(0, 1); n != nil {
		t.Fatal("subtree before first parse must be nil")
	}
}
