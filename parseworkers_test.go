package incremental_test

import (
	"fmt"
	"strings"
	"testing"

	incremental "iglr"
	"iglr/internal/corpus"
)

// bigLispSource emits enough top-level forms to clear the chunked parser's
// minimum token count.
func bigLispSource(forms int) string {
	var sb strings.Builder
	for i := 0; i < forms; i++ {
		fmt.Fprintf(&sb, "(define (f%d x) (* x x)) (f%d %d)\n", i, i, i)
	}
	return sb.String()
}

// bigJavaSource emits classes whose bodies hide brackets and semicolons
// inside string literals and comments — exactly the content a naive
// text-level splitter would trip over. The chunker cuts on the *token*
// stream, after lexing, so these must be invisible to it.
func bigJavaSource(classes int) string {
	var sb strings.Builder
	for i := 0; i < classes; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&sb, "class C%d { int x; void m() { x = x + %d; } }\n", i, i)
		case 1:
			fmt.Fprintf(&sb, "class C%d { String s = \"} ; { not code\"; /* } ; */ }\n", i)
		default:
			fmt.Fprintf(&sb, "class C%d { // trailing } ; comment\n  int y = %d; }\n", i, i)
		}
	}
	return sb.String()
}

// TestParseWorkersDifferential: for every bundled language, a session with
// WithParseWorkers must produce a tree byte-identical to a sequential
// session — whether the chunked path engages (big qualifying inputs) or
// falls back (small or unqualifying ones) — and the committed tree must
// serve incremental edits afterwards.
func TestParseWorkersDifferential(t *testing.T) {
	csrc, _ := corpus.Generate(corpus.Spec{Name: "pw", Lines: 700, Lang: "c", AmbiguousPerKLoC: 5, Seed: 42})
	cppsrc, _ := corpus.Generate(corpus.Spec{Name: "pw", Lines: 700, Lang: "c++", AmbiguousPerKLoC: 5, Seed: 43})
	cases := []struct {
		name       string
		lang       *incremental.Language
		src        string
		wantChunks bool // chunked path must actually engage
	}{
		{"csub-corpus", incremental.CSubset(), csrc, true},
		{"cppsub-corpus", incremental.CPPSubset(), cppsrc, true},
		{"javasub-big", incremental.JavaSubset(), bigJavaSource(400), true},
		{"lispsub-big", incremental.LispSubset(), bigLispSource(700), true},
		{"csub-small", incremental.CSubset(), "typedef int t; t(a); int b; b = b + 1;", false},
		{"expr", incremental.ExprLanguage(), "1 + 2 * x", false},
		{"ambig-expr", incremental.AmbiguousExprLanguage(), "a+b*c+d", false},
		{"javasub", incremental.JavaSubset(), "class A { int[] xs; void m() { xs[0] = 1; } }", false},
		{"mod2sub", incremental.Modula2Subset(), "MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n", false},
		{"scannerless", incremental.ScannerlessLanguage(), "if(cond)x=1;", false},
		{"lr2", incremental.LR2Language(), "x z c", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq := incremental.NewSession(c.lang, c.src)
			seqRoot, err := seq.Parse()
			if err != nil {
				t.Fatal(err)
			}
			want := incremental.FormatDag(c.lang, seqRoot)

			par := incremental.NewSession(c.lang, c.src, incremental.WithParseWorkers(4))
			parRoot, err := par.Parse()
			if err != nil {
				t.Fatal(err)
			}
			if got := incremental.FormatDag(c.lang, parRoot); got != want {
				t.Fatal("parallel cold parse differs from sequential")
			}
			if c.wantChunks && par.Stats().ChunkWorkers == 0 {
				t.Fatal("chunked path did not engage on a qualifying input")
			}
			if !c.wantChunks && par.Stats().ChunkWorkers != 0 {
				t.Fatal("chunked path engaged where it should have fallen back")
			}

			// The chunk-built committed tree must be a first-class citizen:
			// edit both sessions and compare the incremental reparses.
			off := strings.LastIndex(c.src, ";")
			if off < 0 {
				off = len(c.src) - 1
			}
			for _, s := range []*incremental.Session{seq, par} {
				s.Edit(off, 0, " ")
			}
			r1, err1 := seq.Parse()
			r2, err2 := par.Parse()
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("edit reparse: seq err %v, par err %v", err1, err2)
			}
			if err1 == nil {
				if incremental.FormatDag(c.lang, r1) != incremental.FormatDag(c.lang, r2) {
					t.Fatal("incremental reparse differs after chunked cold parse")
				}
			}
		})
	}
}

// TestParseWorkersEditLocality: a chunk-parsed tree must support *local*
// incremental edits — the reparse after a one-token change in a big file
// must reuse committed subtrees rather than rebuild the document.
func TestParseWorkersEditLocality(t *testing.T) {
	src, _ := corpus.Generate(corpus.Spec{Name: "pw", Lines: 900, Lang: "c", AmbiguousPerKLoC: 0, Seed: 7})
	s := incremental.NewSession(incremental.CSubset(), src, incremental.WithParseWorkers(4))
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ChunkWorkers == 0 {
		t.Fatal("chunked path did not engage")
	}
	off := strings.Index(src, "int v0 = ")
	if off < 0 {
		t.Fatal("no initialized declaration found in corpus")
	}
	s.Edit(off+len("int v0 = "), 1, "7")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SubtreeShifts == 0 {
		t.Fatalf("no subtree reuse after chunked cold parse: %+v", st)
	}
	if st.TerminalShifts > 64 {
		t.Fatalf("reparse relexed too much after chunked cold parse: %+v", st)
	}
}

// TestParseWorkersTolerantAndRecovery: the parallel gate must compose with
// the recovery pipeline — a broken edit after a chunked cold parse goes
// through isolation exactly as it would sequentially.
func TestParseWorkersTolerantAndRecovery(t *testing.T) {
	src, _ := corpus.Generate(corpus.Spec{Name: "pw", Lines: 700, Lang: "c", AmbiguousPerKLoC: 0, Seed: 9})
	s := incremental.NewSession(incremental.CSubset(), src, incremental.WithParseWorkers(4))
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	off := strings.Index(src, ";")
	s.Edit(off, 1, "(") // break the first statement
	out := s.ParseWithRecovery()
	if out.Err != nil {
		t.Fatalf("recovery errored: %v", out.Err)
	}
	if out.Clean {
		t.Fatal("edit should have broken the parse")
	}
}

// FuzzChunkedParse feeds adversarial programs through both a sequential and
// a parallel session: delimiters hidden in strings and comments, unbalanced
// brackets, multi-byte runes near potential seams. The two trees (or the
// two errors) must agree byte for byte.
func FuzzChunkedParse(f *testing.F) {
	// Seeds: boundary-hostile constructs repeated past chunkMinTokens.
	// javasub is a GLR language whose top level chunks, and whose lexer has
	// both string literals and comments to hide delimiters in.
	rep := func(s string, n int) string { return strings.Repeat(s, n) }
	f.Add(rep("class A { int x; } ", 200))
	f.Add(rep("class B { String s = \"} ; {\"; } ", 150))
	f.Add(rep("class C { /* } ; */ int y; } ", 150))
	f.Add(rep("class D { // } ;\n int z; } ", 150))
	f.Add(rep("class E { int q; } ", 120) + "class F { int")
	f.Add(rep("class G { String u = \"é世界\"; } ", 150)) // multi-byte runes at seams
	f.Add(rep("class H { int a; } ", 100) + "}" + rep("class I { int b; } ", 100))
	lang := incremental.JavaSubset()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip()
		}
		seq := incremental.NewSession(lang, src)
		par := incremental.NewSession(lang, src, incremental.WithParseWorkers(3))
		r1, err1 := seq.Parse()
		r2, err2 := par.Parse()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error disagreement: seq %v, par %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("error text differs:\n  seq: %v\n  par: %v", err1, err2)
			}
			return
		}
		if incremental.FormatDag(lang, r1) != incremental.FormatDag(lang, r2) {
			t.Fatal("parallel tree differs from sequential")
		}
	})
}
