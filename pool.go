package incremental

import (
	"sync"

	"iglr/internal/dag"
	"iglr/internal/detparse"
	"iglr/internal/document"
	"iglr/internal/iglr"
	"iglr/internal/lexer"
)

// Pool recycles the expensive per-session machinery — the IGLR parser's
// GSS arenas and sharer tables, the deterministic parser's stack, and the
// document's token/node arrays — across many single-shot sessions of one
// language. A batch driver parsing thousands of files (see engine) pays
// those allocations once per worker instead of once per file.
//
// The dag arena is deliberately NOT pooled: parse trees escape to the
// caller through results, so their arena cannot be recycled underneath
// them. Everything the pool recycles is scrubbed of dag pointers first
// (iglr/detparse Scrub, document.ReleaseBuffers), so a parked item never
// pins a retired tree.
//
// A Pool is safe for concurrent use; each Session it yields remains
// single-goroutine.
type Pool struct {
	lang  *Language
	items sync.Pool
}

type poolItem struct {
	parser *iglr.Parser
	det    *detparse.Parser
	toks   []lexer.Token
	nodes  []*dag.Node
	spare  []*dag.Node
	terms  []*dag.Node
}

// NewPool creates a session pool over one shared language.
func NewPool(lang *Language) *Pool {
	return &Pool{lang: lang}
}

// NewSession creates a session over source, reusing recycled machinery
// when available. Behavior is identical to incremental.NewSession with the
// same options; return the session with Recycle when done.
func (p *Pool) NewSession(source string, opts ...SessionOption) *Session {
	it, _ := p.items.Get().(*poolItem)
	if it == nil {
		return NewSession(p.lang, source, opts...)
	}
	s := &Session{
		lang:     p.lang,
		parser:   it.parser,
		spareDet: it.det,
		docOpts: document.Options{
			Toks: it.toks, Nodes: it.nodes, Spare: it.spare, Terms: it.terms,
		},
	}
	*it = poolItem{}
	for _, o := range opts {
		o(s)
	}
	s.doc = p.lang.def.NewDocumentOpts(source, s.docOpts)
	return s
}

// Recycle scrubs the session's machinery and parks it for reuse. The
// session must not be used afterwards; its parse trees remain valid (they
// live in the session's own arena, which is not recycled). Never recycle a
// session whose parse panicked — the parser state may be mid-flight.
func (p *Pool) Recycle(s *Session) {
	if s == nil || s.lang != p.lang || s.parser == nil {
		return
	}
	it := &poolItem{parser: s.parser}
	it.parser.Scrub()
	it.parser.Budget = Budget{}
	it.parser.Stats = iglr.Stats{}
	if det := s.det; det != nil {
		det.Scrub()
		det.Budget = Budget{}
		it.det = det
	} else if s.spareDet != nil {
		it.det = s.spareDet
	}
	if s.doc != nil {
		it.toks, it.nodes, it.spare, it.terms = s.doc.ReleaseBuffers()
	}
	*s = Session{} // poison: any further use fails fast
	p.items.Put(it)
}
