package incremental

import (
	"strings"
	"testing"
)

func pooledLangs() map[string]*Language {
	return map[string]*Language{
		"expr":           ExprLanguage(),
		"expr-ambiguous": AmbiguousExprLanguage(),
		"c-subset":       CSubset(),
		"cpp-subset":     CPPSubset(),
		"java-subset":    JavaSubset(),
		"lisp-subset":    LispSubset(),
		"modula2-subset": Modula2Subset(),
		"lr2-figure7":    LR2Language(),
		"scannerless":    ScannerlessLanguage(),
	}
}

func pooledSource(name string) string {
	switch name {
	case "expr", "expr-ambiguous":
		return "a + b * (c - 42) / -d"
	case "c-subset":
		return "typedef int T; T x; x = f(x, 1) + 2; return x + 1;"
	case "cpp-subset":
		return "typedef int T; T(x); if (x) return 1; else return 2;"
	case "java-subset":
		return "class B { static void main() { int[] a = new int[8]; a[0] = 1; } }"
	case "lisp-subset":
		return `(define (sq x) (* x x)) (cons 1 '(2 3))`
	case "modula2-subset":
		return "MODULE M; VAR x: INTEGER; BEGIN x := 1; IF x = 1 THEN x := 2 END END M."
	case "lr2-figure7":
		return "x z c"
	case "scannerless":
		return "if(a+1)x=2;"
	}
	panic("unknown " + name)
}

// TestPooledSessionsMatchFresh: for every bundled language, a session from
// a recycled pool item commits a tree byte-identical (FormatDag) to a
// fresh session's, across several generations of reuse.
func TestPooledSessionsMatchFresh(t *testing.T) {
	for name, lang := range pooledLangs() {
		t.Run(name, func(t *testing.T) {
			src := pooledSource(name)
			pool := NewPool(lang)
			fresh := NewSession(lang, src)
			fr := fresh.Do(nil)
			var want string
			if fr.Err == nil {
				want = FormatDag(lang, fr.Root)
			}
			for gen := 0; gen < 4; gen++ {
				s := pool.NewSession(src)
				out := s.Do(nil)
				if (out.Err == nil) != (fr.Err == nil) {
					t.Fatalf("gen %d: pooled err %v, fresh err %v", gen, out.Err, fr.Err)
				}
				if out.Err == nil {
					if got := FormatDag(lang, out.Root); got != want {
						t.Fatalf("gen %d: pooled tree diverges from fresh\n--- pooled\n%s\n--- fresh\n%s", gen, got, want)
					}
				}
				pool.Recycle(s)
			}
		})
	}
}

// TestPooledSessionEditing: a recycled session supports the full editing
// lifecycle (edit → reparse → tree equality with an unpooled twin).
func TestPooledSessionEditing(t *testing.T) {
	lang := ExprLanguage()
	pool := NewPool(lang)

	warm := pool.NewSession("1 + 1")
	warm.Do(nil)
	pool.Recycle(warm)

	s := pool.NewSession("a + b * c")
	twin := NewSession(lang, "a + b * c")
	for _, step := range []struct {
		off, rem int
		ins      string
	}{{4, 1, "(x - 2)"}, {0, 1, "zz"}, {3, 0, " + 9"}} {
		s.Edit(step.off, step.rem, step.ins)
		twin.Edit(step.off, step.rem, step.ins)
		a, b := s.Do(nil), twin.Do(nil)
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("pooled err %v, twin err %v", a.Err, b.Err)
		}
		if a.Err == nil && FormatDag(lang, a.Root) != FormatDag(lang, b.Root) {
			t.Fatal("pooled session tree diverges from twin after edit")
		}
	}
	pool.Recycle(s)
}

// TestPooledDeterministicReparseAllocFree: the pooled path preserves the
// zero-allocation guarantee for clean deterministic reparse — the guard
// the arena-pooling layer must not break.
func TestPooledDeterministicReparseAllocFree(t *testing.T) {
	lang := Modula2Subset()
	pool := NewPool(lang)
	warm := pool.NewSession(pooledSource("modula2-subset"))
	if err := warm.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	warm.Do(nil)
	pool.Recycle(warm)

	s := pool.NewSession(pooledSource("modula2-subset"))
	if err := s.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	if out := s.Do(nil); out.Err != nil {
		t.Fatal(out.Err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if out := s.Do(nil); out.Err != nil {
			t.Fatal(out.Err)
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled clean deterministic reparse allocates: %v allocs/op", allocs)
	}
	pool.Recycle(s)
}

// TestPoolReducesAllocations: parsing a stream of files through a pool
// allocates measurably less than fresh sessions.
func TestPoolReducesAllocations(t *testing.T) {
	lang := ExprLanguage()
	src := strings.Repeat("a + b * (c - 42) / -d + ", 40) + "e"

	freshAllocs := testing.AllocsPerRun(50, func() {
		s := NewSession(lang, src)
		if out := s.Do(nil); out.Err != nil {
			t.Fatal(out.Err)
		}
	})
	pool := NewPool(lang)
	warm := pool.NewSession(src)
	warm.Do(nil)
	pool.Recycle(warm)
	pooledAllocs := testing.AllocsPerRun(50, func() {
		s := pool.NewSession(src)
		if out := s.Do(nil); out.Err != nil {
			t.Fatal(out.Err)
		}
		pool.Recycle(s)
	})
	if pooledAllocs >= freshAllocs {
		t.Fatalf("pooling saves nothing: pooled %v allocs/op, fresh %v", pooledAllocs, freshAllocs)
	}
	t.Logf("allocs/op: fresh %.0f, pooled %.0f", freshAllocs, pooledAllocs)
}

// TestRecycleForeignSession: recycling nil or a session from another
// language is a safe no-op.
func TestRecycleForeignSession(t *testing.T) {
	pool := NewPool(ExprLanguage())
	pool.Recycle(nil)
	other := NewSession(LispSubset(), "(a)")
	pool.Recycle(other)
	if other.doc == nil {
		t.Fatal("foreign session was poisoned by the wrong pool")
	}
	// A pool of the right language still works after the misuse.
	s := pool.NewSession("1 + 2")
	if out := s.Do(nil); out.Err != nil {
		t.Fatal(out.Err)
	}
}
