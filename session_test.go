package incremental_test

import (
	"strings"
	"testing"

	incremental "iglr"
)

func TestJavaSessionEndToEnd(t *testing.T) {
	lang := incremental.JavaSubset()
	s := incremental.NewSession(lang, `class A { int[] xs; void m() { xs[0] = 1; } }`)
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Ambiguous() {
		t.Fatal("java subset resolves its forks by context")
	}
	if s.Stats().MaxActiveParsers < 2 {
		t.Fatal("array declarations should fork")
	}
	// Incremental edit inside the method.
	off := strings.Index(s.Text(), "= 1")
	s.Edit(off+2, 1, "42")
	tree, err = s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.Yield(), "xs[0]=42;") {
		t.Fatalf("yield = %q", tree.Yield())
	}
}

func TestLispSessionEndToEnd(t *testing.T) {
	lang := incremental.LispSubset()
	s := incremental.NewSession(lang, `(define (f x) (* x x)) (f 3)`)
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	s.Edit(strings.Index(s.Text(), "3"), 1, "99")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(tree.Yield(), "(f99)") {
		t.Fatalf("yield = %q", tree.Yield())
	}
	if s.Stats().SubtreeShifts == 0 {
		t.Fatal("the definition should be reused whole")
	}
}

func TestScannerlessSessionEndToEnd(t *testing.T) {
	lang := incremental.ScannerlessLanguage()
	if lang.Deterministic() {
		t.Fatal("scannerless keyword prefixes should leave conflicts")
	}
	s := incremental.NewSession(lang, "if(cond)x=1;")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Yield() != "if(cond)x=1;" {
		t.Fatalf("yield = %q", tree.Yield())
	}
	// Turn the keyword use into an identifier by appending letters.
	s.Edit(2, 0, "fy")
	if _, err := s.Parse(); err == nil {
		t.Fatal("iffy(cond)... has no statement reading in this grammar")
	}
	out := s.ParseWithRecovery()
	if out.Err != nil || len(out.Unincorporated) != 1 {
		t.Fatalf("recovery: %+v", out)
	}
}

func TestSessionTreeAndLexErrors(t *testing.T) {
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, "int a;")
	if s.Tree() != nil {
		t.Fatal("no tree before first parse")
	}
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	if s.Tree() == nil || s.Len() != 6 {
		t.Fatal("tree/len wrong")
	}
	s.Edit(3, 0, " @")
	if s.LexErrors() != 1 {
		t.Fatalf("lex errors = %d", s.LexErrors())
	}
	if _, err := s.Parse(); err == nil {
		t.Fatal("lexical garbage should fail to parse")
	}
	s.Edit(3, 2, "")
	if s.LexErrors() != 0 {
		t.Fatal("lex error should clear")
	}
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
}

func TestResolveWithoutSemanticsConfig(t *testing.T) {
	lang := incremental.ExprLanguage() // no semantics attached
	s := incremental.NewSession(lang, "a + b")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	res := s.Resolve()
	if res.Resolved() != 0 && res.Unresolved != 0 {
		t.Fatalf("Resolve on a semantics-free language should be a no-op: %+v", res)
	}
}

func TestWithSemanticsOverride(t *testing.T) {
	// A custom language can attach its own semantic configuration.
	lang, err := incremental.DefineLanguage(incremental.LanguageDef{
		Name:    "mini",
		Grammar: "%token a\n%start S\nS : a ;",
		Lexer: []incremental.LexRule{
			{Name: "A", Pattern: "a"},
		},
		TokenSyms: map[string]string{"A": "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// WithSemantics returns a new immutable *Language; the receiver is
	// unchanged.
	lang = lang.WithSemantics(incremental.SemanticsConfig{
		IsScope:              func(n *incremental.Node) bool { return false },
		TypedefName:          func(n *incremental.Node) (string, bool) { return "", false },
		DeclaredName:         func(n *incremental.Node) (string, bool) { return "", false },
		IsDeclInterpretation: func(n *incremental.Node) bool { return false },
	})
	s := incremental.NewSession(lang, "a")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	_ = s.Resolve() // must not panic
}

func TestResolveTrackedAndUseSites(t *testing.T) {
	lang := incremental.CPPSubset()
	s := incremental.NewSession(lang, "typedef int a; a(b); a(c);")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	res, flips := s.ResolveTracked()
	if res.ResolvedDecl != 2 || len(flips) != 0 {
		t.Fatalf("first pass: %+v flips=%d", res, len(flips))
	}
	if len(s.UseSites("a")) != 2 {
		t.Fatalf("use sites = %d", len(s.UseSites("a")))
	}
	// Flip the namespace of a.
	s.Edit(0, len("typedef int a;"), "int a;")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	res, flips = s.ResolveTracked()
	if res.ResolvedStmt != 2 || len(flips) != 2 {
		t.Fatalf("after flip: %+v flips=%d", res, len(flips))
	}
}

func TestParseErrorPositions(t *testing.T) {
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, "int a;\nint b\nint c;\n")
	_, err := s.Parse()
	if err == nil {
		t.Fatal("missing semicolon should fail")
	}
	pe, ok := err.(*incremental.ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	// The error is detected at the third 'int' (line 3).
	if pe.Line != 3 || pe.Col != 1 {
		t.Fatalf("position = %d:%d, want 3:1 (%v)", pe.Line, pe.Col, err)
	}
	if len(pe.Expected) == 0 {
		t.Fatal("expected-token set missing")
	}
	found := false
	for _, e := range pe.Expected {
		if e == "';'" {
			found = true
		}
	}
	if !found {
		t.Fatalf("';' should be among expected tokens: %v", pe.Expected)
	}
	if !strings.Contains(err.Error(), "3:1") {
		t.Fatalf("message lacks position: %v", err)
	}
}

func TestModula2DeterministicSession(t *testing.T) {
	lang := incremental.Modula2Subset()
	if !lang.Deterministic() {
		t.Fatal("Modula-2 subset should be conflict-free")
	}
	s := incremental.NewSession(lang, "MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n")
	if err := s.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	s.Edit(strings.Index(s.Text(), ":= 1")+3, 1, "42")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.Yield(), "x:=42") {
		t.Fatalf("yield = %q", tree.Yield())
	}
}
