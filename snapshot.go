package incremental

import (
	"io"

	"iglr/internal/iglr"
	"iglr/internal/sesscodec"
)

// Session persistence: Snapshot serializes a session's document state —
// committed text, token stream, parse dag, and pending edits — as a
// versioned, checksummed .ccsess artifact, and RestoreSession rebuilds a
// session from one without lexing or parsing. The restored session is
// behaviorally identical to the original: same committed tree (byte-
// identical FormatDag), same Diagnostics, and the same outcome for any
// subsequent edit sequence. See DESIGN.md, "Durability & crash recovery".

// Sentinel restore failures, aliasing the sesscodec package's. All of them
// mean the artifact is unusable and the caller should parse from source;
// they are distinguished so services can count why.
var (
	// ErrSnapshotCorrupt reports a truncated, bit-flipped, or non-snapshot
	// input.
	ErrSnapshotCorrupt = sesscodec.ErrCorrupt
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version.
	ErrSnapshotVersion = sesscodec.ErrVersion
	// ErrSnapshotLanguage reports a snapshot taken under a different
	// language definition (by content hash) than the one offered.
	ErrSnapshotLanguage = sesscodec.ErrLanguageMismatch
)

// SnapshotExt is the conventional snapshot file extension.
const SnapshotExt = sesscodec.FileExt

// Snapshot writes the session's current state to w as a .ccsess artifact.
// The session is not modified and stays fully usable; pending (uncommitted)
// edits are included and survive the round trip. Snapshot fails — writing
// nothing — if the session state cannot be captured consistently; callers
// treat that as "session not persistable" and keep it live.
func (s *Session) Snapshot(w io.Writer) error { return s.SnapshotTagged(w, 0) }

// SnapshotTagged is Snapshot with an opaque sequence tag stored in the
// artifact, returned by RestoreSessionTagged. Services that pair snapshots
// with a write-ahead journal use the tag to mark which journal records the
// snapshot already includes (the daemon's crash recovery skips them on
// replay). Plain Snapshot writes tag 0.
func (s *Session) SnapshotTagged(w io.Writer, tag uint64) error {
	data, err := s.marshalSnapshot(tag)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func (s *Session) marshalSnapshot(tag uint64) ([]byte, error) {
	committed, toks, pending, err := s.doc.CommittedState()
	if err != nil {
		return nil, err
	}
	return sesscodec.Encode(sesscodec.State{
		Lang:    s.lang.def,
		Text:    committed,
		Toks:    toks,
		Root:    s.doc.Root(),
		Pending: pending,
		Det:     s.det != nil,
		Tag:     tag,
	})
}

// RestoreSession rebuilds a session from a .ccsess artifact written by
// Snapshot. lang must be the same language definition (by content hash)
// the snapshot was taken under; any other language is refused with
// ErrSnapshotLanguage. The committed tree is decoded — not reparsed — and
// pending edits are re-applied through the normal edit path, so the
// restored session is byte-identical in behavior to the one snapshotted:
// same FormatDag, same Diagnostics, same outcomes for subsequent edits.
//
// Options apply as in NewSession (WithBudget, WithTrace); WithLexWorkers
// is accepted but moot, since restore does not lex. Parse statistics and
// the deterministic/GLR parser choice are session runtime state: Stats()
// starts at zero, and the deterministic parser is re-activated
// automatically when the snapshotted session had it on.
//
// A corrupt, truncated, or version-skewed artifact fails with an error
// matching ErrSnapshotCorrupt / ErrSnapshotVersion — never a panic and
// never a silently wrong tree; every structural invariant is re-validated
// against lang's tables during decode.
func RestoreSession(r io.Reader, lang *Language, opts ...SessionOption) (*Session, error) {
	s, _, err := RestoreSessionTagged(r, lang, opts...)
	return s, err
}

// RestoreSessionTagged is RestoreSession returning the artifact's sequence
// tag (see SnapshotTagged).
func RestoreSessionTagged(r io.Reader, lang *Language, opts ...SessionOption) (*Session, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	return restoreSessionBytes(data, lang, opts...)
}

func restoreSessionBytes(data []byte, lang *Language, opts ...SessionOption) (*Session, uint64, error) {
	res, err := sesscodec.Decode(data, lang.def)
	if err != nil {
		return nil, 0, err
	}
	s := &Session{
		lang:   lang,
		parser: iglr.New(lang.def.Table),
	}
	for _, o := range opts {
		o(s)
	}
	s.doc = res.Doc
	if res.Det {
		if err := s.UseDeterministic(); err != nil {
			return nil, 0, err
		}
	}
	return s, res.Tag, nil
}
