package incremental

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// snapshotSource returns a source that parses cleanly under each bundled
// language (pooledSource's expr string uses unary minus, which the raw
// ambiguous grammar rejects).
func snapshotSource(name string) string {
	if name == "expr-ambiguous" {
		return "a + b * (c - 42) / d"
	}
	return pooledSource(name)
}

// snapshotBytes captures s as a .ccsess artifact.
func snapshotBytes(t *testing.T, s *Session, tag uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SnapshotTagged(&buf, tag); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// restoredTwin snapshots s and restores it, failing the test on any error.
func restoredTwin(t *testing.T, s *Session, lang *Language) *Session {
	t.Helper()
	r, err := RestoreSession(bytes.NewReader(snapshotBytes(t, s, 0)), lang)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return r
}

// compareSessions asserts the two sessions present identical state through
// every public observation: text, committed tree rendering, diagnostics.
func compareSessions(t *testing.T, lang *Language, want, got *Session, when string) {
	t.Helper()
	if want.Text() != got.Text() {
		t.Fatalf("%s: text diverged:\n  live %q\n  twin %q", when, want.Text(), got.Text())
	}
	wr, gr := want.Tree(), got.Tree()
	if (wr == nil) != (gr == nil) {
		t.Fatalf("%s: committed root presence diverged: live %v twin %v", when, wr != nil, gr != nil)
	}
	if wr != nil {
		if w, g := FormatDag(lang, wr), FormatDag(lang, gr); w != g {
			t.Fatalf("%s: committed tree diverged:\nlive:\n%s\ntwin:\n%s", when, w, g)
		}
	}
	if w, g := fmt.Sprint(want.Diagnostics()), fmt.Sprint(got.Diagnostics()); w != g {
		t.Fatalf("%s: diagnostics diverged:\n  live %s\n  twin %s", when, w, g)
	}
	if w, g := want.LexErrors(), got.LexErrors(); w != g {
		t.Fatalf("%s: lex error count diverged: live %d twin %d", when, w, g)
	}
}

// compareOutcomes asserts two parse outcomes are observably identical.
func compareOutcomes(t *testing.T, lang *Language, want, got Outcome, when string) {
	t.Helper()
	if (want.Err == nil) != (got.Err == nil) || (want.Err != nil && want.Err.Error() != got.Err.Error()) {
		t.Fatalf("%s: outcome error diverged: live %v twin %v", when, want.Err, got.Err)
	}
	if want.Clean != got.Clean || want.Isolated != got.Isolated || want.ErrorRegions != got.ErrorRegions {
		t.Fatalf("%s: outcome flags diverged: live clean=%v iso=%v regions=%d, twin clean=%v iso=%v regions=%d",
			when, want.Clean, want.Isolated, want.ErrorRegions, got.Clean, got.Isolated, got.ErrorRegions)
	}
	if (want.Root == nil) != (got.Root == nil) {
		t.Fatalf("%s: outcome root presence diverged", when)
	}
	if want.Root != nil {
		if w, g := FormatDag(lang, want.Root), FormatDag(lang, got.Root); w != g {
			t.Fatalf("%s: outcome tree diverged:\nlive:\n%s\ntwin:\n%s", when, w, g)
		}
	}
}

// TestSnapshotRestoreTwin: for every bundled language, a snapshotted and
// restored session is byte-identical in behavior to the never-persisted
// original — same committed tree, diagnostics, and outcomes for the same
// subsequent edits (the persistence convergence oracle).
func TestSnapshotRestoreTwin(t *testing.T) {
	for name, lang := range pooledLangs() {
		t.Run(name, func(t *testing.T) {
			src := snapshotSource(name)
			live := NewSession(lang, src)
			if out := live.Do(nil); out.Err != nil {
				t.Fatalf("seed parse: %v", out.Err)
			}
			twin := restoredTwin(t, live, lang)
			compareSessions(t, lang, live, twin, "after restore")

			// Same edit script against both; every parse must agree.
			edits := []struct {
				off, rem int
				ins      string
			}{
				{0, 0, " "},
				{len(src) / 2, 1, ""},
				{live.Len(), 0, " "},
			}
			for i, e := range edits {
				live.Edit(e.off, e.rem, e.ins)
				twin.Edit(e.off, e.rem, e.ins)
				compareOutcomes(t, lang, live.Do(nil), twin.Do(nil), fmt.Sprintf("edit %d", i))
				compareSessions(t, lang, live, twin, fmt.Sprintf("after edit %d", i))
			}
		})
	}
}

// TestSnapshotPendingEdits: edits applied but not yet parsed survive the
// round trip — the twin holds the same text, the same committed (stale)
// tree, and parses to the same result.
func TestSnapshotPendingEdits(t *testing.T) {
	for name, lang := range pooledLangs() {
		t.Run(name, func(t *testing.T) {
			src := snapshotSource(name)
			live := NewSession(lang, src)
			if out := live.Do(nil); out.Err != nil {
				t.Fatalf("seed parse: %v", out.Err)
			}
			live.Edit(0, 0, " ")
			live.Edit(live.Len()/2, 1, "")
			live.Edit(live.Len(), 0, " ")

			twin := restoredTwin(t, live, lang)
			compareSessions(t, lang, live, twin, "after restore with pending")
			if w, g := live.doc.PendingEdits(), twin.doc.PendingEdits(); fmt.Sprint(w) != fmt.Sprint(g) {
				t.Fatalf("pending edits diverged:\n  live %v\n  twin %v", w, g)
			}
			compareOutcomes(t, lang, live.Do(nil), twin.Do(nil), "parse of pending")
			compareSessions(t, lang, live, twin, "after parsing pending")
		})
	}
}

// TestSnapshotTolerantErrorNodes: a committed tree holding quarantined
// error regions (tier-1 isolation) round-trips with its diagnostics, and
// both sessions converge identically when the text is repaired.
func TestSnapshotTolerantErrorNodes(t *testing.T) {
	lang := CSubset()
	src := "typedef int T; T x; x = f(x, 1) + 2; return x + 1;"
	live := NewSession(lang, src)
	if out := live.Do(nil, Tolerant()); out.Err != nil {
		t.Fatalf("seed parse: %v", out.Err)
	}
	at := strings.Index(src, "x = f")
	live.Edit(at, 0, "@#! ")
	if out := live.Do(nil, Tolerant()); out.Err != nil || out.Clean {
		t.Fatalf("want isolated error outcome, got clean=%v err=%v", out.Clean, out.Err)
	}
	if len(live.Diagnostics()) == 0 {
		t.Fatal("seed session has no diagnostics to persist")
	}

	twin := restoredTwin(t, live, lang)
	compareSessions(t, lang, live, twin, "after restore with error nodes")

	// Repair: both sessions must converge back to the clean parse.
	live.Edit(at, 4, "")
	twin.Edit(at, 4, "")
	compareOutcomes(t, lang, live.Do(nil, Tolerant()), twin.Do(nil, Tolerant()), "repair")
	compareSessions(t, lang, live, twin, "after repair")
	if d := twin.Diagnostics(); len(d) != 0 {
		t.Fatalf("diagnostics survived repair: %v", d)
	}
}

// TestSnapshotDeterministicMode: the deterministic-parser choice is
// restored from the artifact.
func TestSnapshotDeterministicMode(t *testing.T) {
	lang := Modula2Subset()
	live := NewSession(lang, pooledSource("modula2-subset"))
	if err := live.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	if out := live.Do(nil); out.Err != nil {
		t.Fatalf("seed parse: %v", out.Err)
	}
	twin := restoredTwin(t, live, lang)
	if twin.det == nil {
		t.Fatal("restored session did not re-activate the deterministic parser")
	}
	compareSessions(t, lang, live, twin, "after restore")

	plain := NewSession(lang, pooledSource("modula2-subset"))
	plain.Do(nil)
	if r := restoredTwin(t, plain, lang); r.det != nil {
		t.Fatal("restored session activated the deterministic parser unasked")
	}
}

// TestSnapshotBeforeFirstParse: a session that has never parsed (text and
// pending edits only) still round-trips; both twins then parse identically.
func TestSnapshotBeforeFirstParse(t *testing.T) {
	lang := ExprLanguage()
	live := NewSession(lang, "a + b")
	live.Edit(5, 0, " * c")
	twin := restoredTwin(t, live, lang)
	if twin.Tree() != nil {
		t.Fatal("restored never-parsed session has a committed tree")
	}
	compareSessions(t, lang, live, twin, "after restore")
	compareOutcomes(t, lang, live.Do(nil), twin.Do(nil), "first parse")
	compareSessions(t, lang, live, twin, "after first parse")
}

// TestSnapshotTag: the opaque journal tag rides along.
func TestSnapshotTag(t *testing.T) {
	lang := ExprLanguage()
	s := NewSession(lang, "a + b")
	s.Do(nil)
	data := snapshotBytes(t, s, 0xdeadbeefcafe)
	_, tag, err := RestoreSessionTagged(bytes.NewReader(data), lang)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 0xdeadbeefcafe {
		t.Fatalf("tag round trip: got %#x", tag)
	}
}

// TestRestoreForeignLanguage: an artifact restores only against the exact
// language definition it was taken under.
func TestRestoreForeignLanguage(t *testing.T) {
	s := NewSession(ExprLanguage(), "a + b")
	s.Do(nil)
	data := snapshotBytes(t, s, 0)
	if _, err := RestoreSession(bytes.NewReader(data), CSubset()); err != ErrSnapshotLanguage {
		t.Fatalf("want ErrSnapshotLanguage, got %v", err)
	}
	// Same grammar content compiled twice is the same definition hash —
	// restore across instances is allowed.
	if _, err := RestoreSession(bytes.NewReader(data), ExprLanguage()); err != nil {
		t.Fatalf("restore against equal definition failed: %v", err)
	}
}

// TestSnapshotBudgetOption: options apply to the restored session.
func TestSnapshotBudgetOption(t *testing.T) {
	lang := ExprLanguage()
	s := NewSession(lang, "a + b * c")
	s.Do(nil)
	b := Budget{MaxArenaNodes: 123456}
	r, err := RestoreSession(bytes.NewReader(snapshotBytes(t, s, 0)), lang, WithBudget(b))
	if err != nil {
		t.Fatal(err)
	}
	if r.BudgetLimits() != b {
		t.Fatalf("budget option not applied: %+v", r.BudgetLimits())
	}
	if out := r.Do(nil); out.Err != nil {
		t.Fatalf("budgeted restored session parse: %v", out.Err)
	}
}
