package incremental_test

import (
	"errors"
	"strings"
	"testing"

	incremental "iglr"
)

// tolerantCase is one bundled language plus a valid program and an edit
// that breaks it.
type tolerantCase struct {
	name     string
	lang     *incremental.Language
	src      string
	off, rem int
	ins      string
}

// The sequence-structured bundled languages: tier-1 isolation must bound
// the damage in every one of them.
func seqCases() []tolerantCase {
	return []tolerantCase{
		{"csub", incremental.CSubset(), "int a; int b; int c;", 11, 1, "("},
		{"cppsub", incremental.CPPSubset(), "int a; if (a) x = 1; int b;", 14, 1, "+"},
		{"javasub", incremental.JavaSubset(),
			"class A { int[] xs; void m() { xs[0] = 1; } }", 31, 2, ")("},
		{"lispsub", incremental.LispSubset(), "(define (f x) (* x x)) (f 3)", 26, 1, ")"},
		{"mod2sub", incremental.Modula2Subset(),
			"MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n", 14, 1, ";"},
		{"scannerless", incremental.ScannerlessLanguage(), "if(cond)x=1;x=2;", 14, 1, "+"},
	}
}

// TestIsolationNeverRevertsText is the tentpole acceptance criterion: on
// every sequence-structured bundled language, an edit that introduces a
// syntax error keeps the user's text byte-for-byte, commits a tree with at
// least one error node, and reports at least one diagnostic whose span
// actually covers broken text; a repairing edit then converges to a tree
// identical to a from-scratch batch parse.
func TestIsolationNeverRevertsText(t *testing.T) {
	for _, tc := range seqCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := incremental.NewSession(tc.lang, tc.src)
			if _, err := s.Parse(); err != nil {
				t.Fatalf("baseline %q does not parse: %v", tc.src, err)
			}
			removed := tc.src[tc.off : tc.off+tc.rem]
			s.Edit(tc.off, tc.rem, tc.ins)
			broken := tc.src[:tc.off] + tc.ins + tc.src[tc.off+tc.rem:]
			if _, err := incremental.NewSession(tc.lang, broken).Parse(); err == nil {
				t.Fatalf("edit does not actually break %q", broken)
			}

			out := s.ParseWithRecovery()
			if out.Err != nil {
				t.Fatalf("recovery errored: %v", out.Err)
			}
			if !out.Isolated {
				t.Fatalf("tier-1 isolation did not engage: %+v", out)
			}
			if s.Text() != broken {
				t.Fatalf("text reverted under tier-1: %q, want %q", s.Text(), broken)
			}
			if out.ErrorRegions < 1 || len(s.ErrorNodes()) < 1 {
				t.Fatalf("no error nodes committed: regions=%d nodes=%d",
					out.ErrorRegions, len(s.ErrorNodes()))
			}
			ds := s.Diagnostics()
			if len(ds) < 1 {
				t.Fatal("no diagnostics reported")
			}
			d := ds[0]
			if d.Offset < 0 || d.Offset+d.Length > len(broken) || d.Length <= 0 {
				t.Fatalf("diagnostic span out of range: %+v", d)
			}
			if !strings.Contains(broken[d.Offset:d.Offset+d.Length], tc.ins) {
				t.Fatalf("diagnostic %q does not cover the damage %q",
					broken[d.Offset:d.Offset+d.Length], tc.ins)
			}

			// Repair: inverse edit, then full convergence to the batch parse.
			s.Edit(tc.off, len(tc.ins), removed)
			root, err := s.Parse()
			if err != nil {
				t.Fatalf("repaired parse: %v", err)
			}
			if s.Text() != tc.src {
				t.Fatalf("repaired text = %q, want %q", s.Text(), tc.src)
			}
			if len(s.Diagnostics()) != 0 || len(s.ErrorNodes()) != 0 {
				t.Fatalf("quarantine not cleared after repair: %v", s.Diagnostics())
			}
			fresh, err := incremental.NewSession(tc.lang, tc.src).Parse()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := incremental.FormatDag(tc.lang, root), incremental.FormatDag(tc.lang, fresh); got != want {
				t.Fatalf("repaired tree differs from batch parse:\n-- incremental --\n%s\n-- batch --\n%s", got, want)
			}
		})
	}
}

// TestTier2WhenIsolationCannotBound: languages without associative
// sequences offer no isolation boundary, so recovery falls back to the
// paper's history-sensitive replay — the bad edit is reverted and reported
// as unincorporated, preserving the pre-existing Outcome contract.
func TestTier2WhenIsolationCannotBound(t *testing.T) {
	cases := []tolerantCase{
		{"expr", incremental.ExprLanguage(), "a + b", 2, 1, ")"},
		{"lr2", incremental.LR2Language(), "x z c", 4, 1, "x x"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := incremental.NewSession(tc.lang, tc.src)
			if _, err := s.Parse(); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			s.Edit(tc.off, tc.rem, tc.ins)
			out := s.ParseWithRecovery()
			if out.Isolated {
				t.Fatalf("isolation cannot bound damage in %s, yet Isolated=true", tc.name)
			}
			if out.Err != nil {
				t.Fatalf("tier-2 errored: %v", out.Err)
			}
			if len(out.Unincorporated) != 1 {
				t.Fatalf("unincorporated = %d, want 1", len(out.Unincorporated))
			}
			if s.Text() != tc.src {
				t.Fatalf("tier-2 must revert the bad edit: %q, want %q", s.Text(), tc.src)
			}
		})
	}
}

// TestDiagnosticsPositionMapping tracks one diagnostic across several
// committed edits before, inside, and after its region (satellite: ≥3
// consecutive commits).
func TestDiagnosticsPositionMapping(t *testing.T) {
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, "int a; int b; int c;")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	s.Edit(11, 1, "(") // break the middle statement
	if out := s.ParseWithRecovery(); !out.Isolated {
		t.Fatalf("expected isolation: %+v", out)
	}

	// The diagnostic must keep covering the broken token as the text
	// shifts around (and within) it.
	check := func(step string) incremental.Diagnostic {
		t.Helper()
		ds := s.Diagnostics()
		if len(ds) != 1 {
			t.Fatalf("%s: diagnostics = %v, want exactly 1", step, ds)
		}
		d := ds[0]
		txt := s.Text()
		if d.Offset < 0 || d.Offset+d.Length > len(txt) {
			t.Fatalf("%s: span %d+%d out of range of %q", step, d.Offset, d.Length, txt)
		}
		if !strings.Contains(txt[d.Offset:d.Offset+d.Length], "(") {
			t.Fatalf("%s: span %q lost the damage in %q", step, txt[d.Offset:d.Offset+d.Length], txt)
		}
		return d
	}
	before := check("after isolation")

	// Commit 1: insertion before the region shifts it right.
	s.Edit(0, 0, "int p; ")
	if out := s.ParseWithRecovery(); out.Err != nil || !out.Isolated {
		t.Fatalf("commit 1: %+v", out)
	}
	d1 := check("insert before")
	if d1.Offset != before.Offset+len("int p; ") {
		t.Fatalf("offset did not shift with the insertion: %d, want %d",
			d1.Offset, before.Offset+len("int p; "))
	}

	// Commit 2: insertion inside the region grows it in place.
	s.Edit(d1.Offset+d1.Length-1, 0, " NUM NUM")
	if out := s.ParseWithRecovery(); out.Err != nil || !out.Isolated {
		t.Fatalf("commit 2: %+v", out)
	}
	d2 := check("insert inside")
	if d2.Offset != d1.Offset {
		t.Fatalf("offset moved on an in-region edit: %d, want %d", d2.Offset, d1.Offset)
	}

	// Commit 3: deletion after the region leaves it untouched.
	txt := s.Text()
	tail := strings.LastIndex(txt, "int c;")
	s.Edit(tail, len("int c;"), "int cc;")
	if out := s.ParseWithRecovery(); out.Err != nil || !out.Isolated {
		t.Fatalf("commit 3: %+v", out)
	}
	d3 := check("edit after")
	if d3.Offset != d2.Offset {
		t.Fatalf("offset moved on an after-region edit: %d, want %d", d3.Offset, d2.Offset)
	}

	// Even between Edit and Parse the positions track live.
	s.Edit(0, 0, "int q; ")
	dLive := check("pending edit")
	if dLive.Offset != d3.Offset+len("int q; ") {
		t.Fatalf("pending-edit remap: %d, want %d", dLive.Offset, d3.Offset+len("int q; "))
	}
}

// TestBudgetTripLeavesEditsPending (satellite): an infrastructure failure
// during recovery must not trigger replay or isolation — the edit stays
// pending, the text keeps the user's bytes, and the error surfaces as
// ErrBudget. Raising the budget then succeeds on the same pending edit.
func TestBudgetTripLeavesEditsPending(t *testing.T) {
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, "int a; int b; int c;")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	s.SetBudget(incremental.Budget{MaxArenaNodes: 1})
	s.Edit(11, 1, "(")
	out := s.ParseWithRecovery()
	if !errors.Is(out.Err, incremental.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", out.Err)
	}
	if out.Isolated || len(out.Unincorporated) != 0 || len(out.Incorporated) != 0 {
		t.Fatalf("budget trip triggered recovery machinery: %+v", out)
	}
	if s.Text() != "int a; int (; int c;" {
		t.Fatalf("budget trip disturbed the text: %q", s.Text())
	}

	// The pending edit survives: with the budget lifted, the same session
	// isolates it.
	s.SetBudget(incremental.Budget{})
	out = s.ParseWithRecovery()
	if out.Err != nil || !out.Isolated {
		t.Fatalf("after lifting the budget: %+v", out)
	}
	if s.Text() != "int a; int (; int c;" {
		t.Fatalf("text = %q", s.Text())
	}
}
